package kafkalite

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"whale/internal/dsps"
	"whale/internal/transport"
	"whale/internal/tuple"
)

func TestTopicLifecycle(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("orders", 4, 0); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateTopic("orders", 4, 0); err == nil {
		t.Fatal("duplicate topic accepted")
	}
	if err := b.CreateTopic("bad", 0, 0); err == nil {
		t.Fatal("0 partitions accepted")
	}
	if n, err := b.Partitions("orders"); err != nil || n != 4 {
		t.Fatalf("partitions %d %v", n, err)
	}
	if _, err := b.Partitions("ghost"); err == nil {
		t.Fatal("unknown topic accepted")
	}
}

func TestProduceFetchRoundTrip(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 2, 0)
	for i := 0; i < 10; i++ {
		if _, err := b.ProduceTo("t", i%2, nil, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	recs, next, err := b.Fetch("t", 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || next != 5 {
		t.Fatalf("fetched %d next %d", len(recs), next)
	}
	for i, r := range recs {
		if r.Offset != int64(i) || string(r.Value) != fmt.Sprintf("v%d", i*2) {
			t.Fatalf("record %d: %+v", i, r)
		}
	}
	// Fetch at end: empty, same offset.
	recs, next, err = b.Fetch("t", 0, 5, 100)
	if err != nil || len(recs) != 0 || next != 5 {
		t.Fatalf("end fetch: %v %d %v", recs, next, err)
	}
	// Bounded fetch.
	recs, next, _ = b.Fetch("t", 1, 0, 2)
	if len(recs) != 2 || next != 2 {
		t.Fatalf("bounded fetch %d next %d", len(recs), next)
	}
	if end, _ := b.EndOffset("t", 0); end != 5 {
		t.Fatalf("end offset %d", end)
	}
}

func TestKeyedProduceIsDeterministic(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 8, 0)
	p1, _, err := b.Produce("t", []byte("driver-42"), []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	p2, _, _ := b.Produce("t", []byte("driver-42"), []byte("b"))
	if p1 != p2 {
		t.Fatalf("same key landed on partitions %d and %d", p1, p2)
	}
}

func TestRetentionTrims(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 1, 5)
	for i := 0; i < 12; i++ {
		b.ProduceTo("t", 0, nil, []byte{byte(i)})
	}
	// Offsets 0..6 trimmed; reading them errors.
	if _, _, err := b.Fetch("t", 0, 0, 10); err == nil {
		t.Fatal("trimmed offset readable")
	}
	recs, _, err := b.Fetch("t", 0, 7, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 || recs[0].Offset != 7 || recs[0].Value[0] != 7 {
		t.Fatalf("post-trim fetch: %+v", recs)
	}
}

func TestGroupAssignmentRange(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 8, 0)
	a1, g1, err := b.JoinGroup("g", "m1", "t")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, []int{0, 1, 2, 3, 4, 5, 6, 7}) {
		t.Fatalf("single member assignment %v", a1)
	}
	_, g2, _ := b.JoinGroup("g", "m2", "t")
	if g2 == g1 {
		t.Fatal("generation did not change on join")
	}
	// Rebalanced: m1 and m2 split the range.
	a1b, _, _ := b.Assignment("g", "m1", "t")
	a2, _, _ := b.Assignment("g", "m2", "t")
	if len(a1b)+len(a2) != 8 {
		t.Fatalf("assignments %v + %v", a1b, a2)
	}
	seen := map[int]bool{}
	for _, p := range append(append([]int{}, a1b...), a2...) {
		if seen[p] {
			t.Fatalf("partition %d assigned twice", p)
		}
		seen[p] = true
	}
	// Leave: m2 goes; m1 gets everything back.
	b.LeaveGroup("g", "m2")
	a1c, _, _ := b.Assignment("g", "m1", "t")
	if len(a1c) != 8 {
		t.Fatalf("after leave: %v", a1c)
	}
	if _, _, err := b.Assignment("g", "m2", "t"); err == nil {
		t.Fatal("departed member still assigned")
	}
}

func TestUnevenAssignment(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 7, 0)
	for _, m := range []string{"a", "b", "c"} {
		b.JoinGroup("g", m, "t")
	}
	total := 0
	for _, m := range []string{"a", "b", "c"} {
		parts, _, _ := b.Assignment("g", m, "t")
		if len(parts) < 2 || len(parts) > 3 {
			t.Fatalf("member %s got %v", m, parts)
		}
		total += len(parts)
	}
	if total != 7 {
		t.Fatalf("total %d", total)
	}
}

func TestCommitOffsets(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 2, 0)
	b.JoinGroup("g", "m", "t")
	if got := b.CommittedOffset("g", "t", 0); got != 0 {
		t.Fatalf("initial commit %d", got)
	}
	b.CommitOffset("g", "t", 0, 5)
	b.CommitOffset("g", "t", 0, 3) // regressions ignored
	if got := b.CommittedOffset("g", "t", 0); got != 5 {
		t.Fatalf("commit %d", got)
	}
	if err := b.CommitOffset("ghost", "t", 0, 1); err == nil {
		t.Fatal("unknown group accepted")
	}
}

func TestConcurrentProducersConsumers(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 4, 0)
	const perProducer = 500
	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				b.ProduceTo("t", p, nil, []byte{byte(i)})
			}
		}(p)
	}
	wg.Wait()
	total := 0
	for p := 0; p < 4; p++ {
		recs, _, err := b.Fetch("t", p, 0, perProducer*2)
		if err != nil {
			t.Fatal(err)
		}
		total += len(recs)
		for i, r := range recs {
			if r.Offset != int64(i) {
				t.Fatalf("offset gap at %d", i)
			}
		}
	}
	if total != 4*perProducer {
		t.Fatalf("total %d", total)
	}
}

// flakyBolt fails the first delivery of every record, forcing redelivery.
type flakyBolt struct {
	mu   sync.Mutex
	seen map[int64]int
	done map[int64]bool
}

func (f *flakyBolt) Prepare(*dsps.TaskContext) {}
func (f *flakyBolt) Execute(tp *tuple.Tuple, c *dsps.Collector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	seq := tp.Int(0)
	f.seen[seq]++
	if f.seen[seq] == 1 {
		c.Fail()
		return
	}
	f.done[seq] = true
}
func (f *flakyBolt) Cleanup() {}

func TestSpoutEndToEndAtLeastOnce(t *testing.T) {
	const records = 120
	b := NewBroker()
	b.CreateTopic("orders", 3, 0)
	for i := 0; i < records; i++ {
		if _, _, err := b.Produce("orders", []byte(fmt.Sprintf("k%d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	flaky := &flakyBolt{seen: map[int64]int{}, done: map[int64]bool{}}
	tb := dsps.NewTopologyBuilder()
	tb.Spout("kafka", func() dsps.Spout {
		return &Spout{
			Broker: b, Topic: "orders", Group: "g1", Reliable: true,
			Decode: func(r Record) []tuple.Value {
				// Global sequence: partition*1000 + offset.
				return []tuple.Value{int64(1000)*int64(r.Offset) + int64(r.Value[0]), string(r.Key)}
			},
		}
	}, 2)
	tb.Bolt("sink", func() dsps.Bolt { return flaky }, 2).Shuffle("kafka")
	topo, err := tb.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := dsps.Start(topo, dsps.Config{
		Workers: 2, Network: transport.NewInprocNetwork(0),
		AckEnabled: true, AckTimeout: 2 * time.Second, MaxSpoutPending: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every record must eventually be processed successfully despite the
	// first-attempt failures (at-least-once via Fail -> requeue).
	deadline := time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		flaky.mu.Lock()
		n := len(flaky.done)
		flaky.mu.Unlock()
		if n >= records {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	eng.StopSpouts()
	eng.Stop()
	flaky.mu.Lock()
	defer flaky.mu.Unlock()
	if len(flaky.done) != records {
		t.Fatalf("processed %d of %d records", len(flaky.done), records)
	}
	for seq, n := range flaky.seen {
		if n < 2 {
			t.Fatalf("record %d was not redelivered (seen %d)", seq, n)
		}
	}
	// Offsets committed: a fresh consumer in the same group starts at the end.
	committed := int64(0)
	for p := 0; p < 3; p++ {
		committed += b.CommittedOffset("g1", "orders", p)
	}
	if committed != records {
		t.Fatalf("committed %d of %d offsets", committed, records)
	}
}

func TestSpoutExitAtEnd(t *testing.T) {
	b := NewBroker()
	b.CreateTopic("t", 1, 0)
	for i := 0; i < 20; i++ {
		b.ProduceTo("t", 0, nil, []byte{byte(i)})
	}
	var got int64
	var mu sync.Mutex
	tb := dsps.NewTopologyBuilder()
	tb.Spout("kafka", func() dsps.Spout {
		return &Spout{
			Broker: b, Topic: "t", Group: "g", ExitAtEnd: true,
			Decode: func(r Record) []tuple.Value { return []tuple.Value{int64(r.Value[0])} },
		}
	}, 1)
	tb.Bolt("sink", func() dsps.Bolt {
		return &countBolt{fn: func() { mu.Lock(); got++; mu.Unlock() }}
	}, 1).Shuffle("kafka")
	topo, _ := tb.Build()
	eng, err := dsps.Start(topo, dsps.Config{Workers: 1, Network: transport.NewInprocNetwork(0)})
	if err != nil {
		t.Fatal(err)
	}
	eng.WaitSpouts()
	eng.Drain(10 * time.Second)
	eng.Stop()
	mu.Lock()
	defer mu.Unlock()
	if got != 20 {
		t.Fatalf("delivered %d of 20", got)
	}
}

type countBolt struct{ fn func() }

func (c *countBolt) Prepare(*dsps.TaskContext)             {}
func (c *countBolt) Execute(*tuple.Tuple, *dsps.Collector) { c.fn() }
func (c *countBolt) Cleanup()                              {}
