package kafkalite

import (
	"encoding/binary"
	"testing"
)

// TestSpoutShardSnapshotRoundTrip: the sharded cut carries the same resume
// points SnapshotState records, keyed by partition id, and RestoreShards
// rewinds exactly like RestoreState — partitions this instance no longer
// owns are ignored, nil resets to initial state.
func TestSpoutShardSnapshotRoundTrip(t *testing.T) {
	b := NewBroker()
	if err := b.CreateTopic("t", 2, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		for part := 0; part < 2; part++ {
			if _, err := b.ProduceTo("t", part, nil, []byte{byte(10*part + i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := &Spout{Broker: b, Topic: "t", Group: "g", MaxPoll: 2,
		Decode: func(rec Record) []interface{} { return []interface{}{rec.Value} }}
	s.memberID = "m"
	assigned, gen, err := b.JoinGroup("g", "m", "t")
	if err != nil {
		t.Fatal(err)
	}
	s.inflight = map[int64]pending{}
	s.adoptAssignment(assigned, gen)
	if !s.poll() {
		t.Fatal("poll buffered nothing")
	}
	shards, err := s.ShardSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("%d shards for 2 assigned partitions", len(shards))
	}
	for part, d := range shards {
		if len(d) != 8 {
			t.Fatalf("partition %d shard is %d bytes", part, len(d))
		}
		if off := int64(binary.LittleEndian.Uint64(d)); off != 0 {
			t.Fatalf("partition %d resume offset %d, want 0 (records still buffered)", part, off)
		}
	}

	// Drain the buffer (simulating emission), restore from shards: the
	// buffered records replay from the recorded resume points.
	nBuffered := len(s.buffered)
	s.buffered = nil
	// A shard for a partition this instance does not own is ignored, not an
	// error: after a rescale the merged cut covers every partition while
	// each instance owns a subset.
	var stray [8]byte
	binary.LittleEndian.PutUint64(stray[:], 99)
	shards[9] = stray[:]
	if err := s.RestoreShards(shards); err != nil {
		t.Fatal(err)
	}
	if !s.poll() {
		t.Fatal("poll after restore buffered nothing")
	}
	if len(s.buffered) != nBuffered {
		t.Fatalf("replayed %d records, want %d", len(s.buffered), nBuffered)
	}

	// Malformed shard payloads are rejected.
	if err := s.RestoreShards(map[int32][]byte{0: {1, 2, 3}}); err == nil {
		t.Fatal("short shard accepted")
	}

	// Nil resets to initial state, like RestoreState(nil).
	if err := s.RestoreShards(nil); err != nil {
		t.Fatal(err)
	}
	if len(s.buffered) != 0 || len(s.inflight) != 0 {
		t.Fatal("nil restore left residue")
	}
	if s.cursor[0] != 0 || s.cursor[1] != 0 {
		t.Fatalf("nil restore cursors %v, want initial offsets", s.cursor)
	}
}
