package kafkalite

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"whale/internal/dsps"
	"whale/internal/tuple"
)

// Spout is a dsps source reading one topic through a consumer group: each
// spout task joins the group and consumes its assigned partitions. In
// reliable mode (engine AckEnabled) records are emitted with
// EmitReliable and their offsets committed only once acked, giving the
// at-least-once delivery a Kafka-backed Storm topology has.
type Spout struct {
	// Broker, Topic and Group select the source.
	Broker *Broker
	Topic  string
	Group  string
	// Decode turns a record into tuple fields. Required.
	Decode func(rec Record) []tuple.Value
	// Stream overrides the output stream (default: the operator id).
	Stream string
	// Reliable emits with acking; offsets commit on ack.
	Reliable bool
	// MaxPoll bounds records fetched per partition poll (default 64).
	MaxPoll int
	// ExitAtEnd stops the spout once every assigned partition is consumed
	// to its current end (for bounded runs and tests).
	ExitAtEnd bool

	ctx      *dsps.TaskContext
	memberID string
	assigned []int
	gen      int64
	cursor   map[int]int64
	initial  map[int]int64 // first-adoption offsets: the nil-restore rewind points
	buffered []pending
	inflight map[int64]pending // msgID -> record position
	nextMsg  int64
}

// pending is a fetched record awaiting emission or ack.
type pending struct {
	part   int
	rec    Record
	stream string
}

// Open implements dsps.Spout.
func (s *Spout) Open(ctx *dsps.TaskContext) {
	s.ctx = ctx
	s.memberID = fmt.Sprintf("task-%d", ctx.TaskID)
	s.cursor = map[int]int64{}
	s.inflight = map[int64]pending{}
	if s.MaxPoll <= 0 {
		s.MaxPoll = 64
	}
	if s.Stream == "" {
		s.Stream = ctx.OperatorID
	}
	assigned, gen, err := s.Broker.JoinGroup(s.Group, s.memberID, s.Topic)
	if err != nil {
		return
	}
	s.adoptAssignment(assigned, gen)
}

// adoptAssignment installs a (re)assignment, resuming each partition from
// the group's committed offset. The offset at which a partition is first
// adopted is retained as its initial position: a reset-to-initial-state
// restore (nil snapshot) rewinds there, not to the committed offset, which
// keeps advancing with emission/acks and would lose pre-crash records.
func (s *Spout) adoptAssignment(assigned []int, gen int64) {
	s.assigned, s.gen = assigned, gen
	s.cursor = map[int]int64{}
	if s.initial == nil {
		s.initial = map[int]int64{}
	}
	for _, p := range assigned {
		s.cursor[p] = s.Broker.CommittedOffset(s.Group, s.Topic, p)
		if _, ok := s.initial[p]; !ok {
			s.initial[p] = s.cursor[p]
		}
	}
}

// Next implements dsps.Spout: it emits one record per call, polling the
// broker when its local buffer is empty.
func (s *Spout) Next(c *dsps.Collector) bool {
	if len(s.buffered) == 0 {
		if !s.poll() {
			if s.ExitAtEnd {
				return false
			}
			time.Sleep(500 * time.Microsecond)
			return true // stay alive; more records may arrive
		}
	}
	p := s.buffered[0]
	s.buffered = s.buffered[1:]
	vals := s.Decode(p.rec)
	if s.Reliable {
		s.nextMsg++
		s.inflight[s.nextMsg] = p
		c.EmitReliableTo(p.stream, s.nextMsg, vals...)
	} else {
		c.EmitTo(p.stream, vals...)
		// Without acking, commit eagerly (at-most-once).
		s.Broker.CommitOffset(s.Group, s.Topic, p.part, p.rec.Offset+1)
	}
	return true
}

// poll fetches the next batch from assigned partitions; it reports whether
// anything was buffered. A group rebalance (another member joined or left)
// is detected by generation change and adopted before fetching.
func (s *Spout) poll() bool {
	if assigned, gen, err := s.Broker.Assignment(s.Group, s.memberID, s.Topic); err == nil && gen != s.gen {
		s.adoptAssignment(assigned, gen)
	}
	for _, part := range s.assigned {
		recs, next, err := s.Broker.Fetch(s.Topic, part, s.cursor[part], s.MaxPoll)
		if err != nil {
			continue
		}
		s.cursor[part] = next
		for _, r := range recs {
			s.buffered = append(s.buffered, pending{part: part, rec: r, stream: s.Stream})
		}
	}
	return len(s.buffered) > 0
}

// Ack implements dsps.ReliableSpout: commit the record's offset.
func (s *Spout) Ack(msgID int64) {
	p, ok := s.inflight[msgID]
	if !ok {
		return
	}
	delete(s.inflight, msgID)
	s.Broker.CommitOffset(s.Group, s.Topic, p.part, p.rec.Offset+1)
}

// Fail implements dsps.ReliableSpout: requeue the record for redelivery
// (at-least-once).
func (s *Spout) Fail(msgID int64) {
	p, ok := s.inflight[msgID]
	if !ok {
		return
	}
	delete(s.inflight, msgID)
	s.buffered = append(s.buffered, p)
}

// Close implements dsps.Spout.
func (s *Spout) Close() {
	if s.Broker != nil && s.memberID != "" {
		s.Broker.LeaveGroup(s.Group, s.memberID)
	}
}

// SnapshotState implements snapshot.Snapshotter: it records, per assigned
// partition, the offset of the first record NOT yet emitted — the resume
// point. Records sitting in the local buffer (fetched but unemitted, or
// requeued by Fail) count as unemitted: their smallest offset wins, so
// replay after restore re-delivers exactly the suffix the downstream state
// hasn't absorbed. In-flight reliable emissions (emitted but unacked) are
// deliberately NOT counted: they were emitted before this snapshot's
// barrier, so per-link FIFO puts them ahead of the barrier on every path
// and their effects are already inside the surviving tasks' epoch-N
// snapshots — rewinding to them would re-emit them with post-fence stamps
// that fencing cannot retire, double-counting them into restored state.
// The encoding is sorted by partition, hence deterministic.
func (s *Spout) SnapshotState() ([]byte, error) {
	resume := s.resumePoints()
	parts := make([]int, 0, len(resume))
	for part := range resume {
		parts = append(parts, part)
	}
	sort.Ints(parts)
	out := make([]byte, 0, 4+12*len(parts))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(parts)))
	for _, part := range parts {
		out = binary.LittleEndian.AppendUint32(out, uint32(part))
		out = binary.LittleEndian.AppendUint64(out, uint64(resume[part]))
	}
	return out, nil
}

// resumePoints computes, per assigned partition, the offset of the first
// record not yet emitted (see SnapshotState for the reasoning).
func (s *Spout) resumePoints() map[int]int64 {
	resume := map[int]int64{}
	for _, part := range s.assigned {
		resume[part] = s.cursor[part]
	}
	for _, p := range s.buffered {
		if cur, ok := resume[p.part]; !ok || p.rec.Offset < cur {
			resume[p.part] = p.rec.Offset
		}
	}
	return resume
}

// ShardSnapshot implements snapshot.Sharder: one shard per assigned
// partition — the shard id is the partition id, the payload its 8-byte
// little-endian resume offset. Keying the cut by partition rather than by
// task means a later restore can hand any instance exactly the partitions
// it owns, even when the instance count changed in between.
func (s *Spout) ShardSnapshot() (map[int32][]byte, error) {
	resume := s.resumePoints()
	out := make(map[int32][]byte, len(resume))
	for part, pos := range resume {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(pos))
		out[int32(part)] = b[:]
	}
	return out, nil
}

// RestoreShards implements snapshot.Sharder: rewind to the resume offsets
// of the partitions present in shards, ignoring partitions this instance
// no longer owns (nil resets to initial state, like RestoreState).
func (s *Spout) RestoreShards(shards map[int32][]byte) error {
	if shards == nil {
		return s.RestoreState(nil)
	}
	resume := make(map[int]int64, len(shards))
	for part, d := range shards {
		if len(d) != 8 {
			return fmt.Errorf("kafkalite: partition %d shard length %d, want 8", part, len(d))
		}
		resume[int(part)] = int64(binary.LittleEndian.Uint64(d))
	}
	s.buffered = nil
	s.inflight = map[int64]pending{}
	return s.restoreResume(resume)
}

// RestoreState implements snapshot.Snapshotter: it seeks the group's
// committed offsets back to the snapshot's resume points (SeekCommitted,
// bounds-checked against retention and the live head) and resets the
// consume cursors there, dropping any buffered or in-flight records — they
// are all at or past the resume point and will be re-fetched. A nil
// snapshot resets to initial state: each partition rewinds to the offset
// it was first adopted at (clamped forward to the retained log start),
// NOT to the group's committed offset — commits advance eagerly at
// emission (unreliable) or on ack (reliable), so they reflect progress
// the reset has just erased from every bolt.
func (s *Spout) RestoreState(data []byte) error {
	s.buffered = nil
	s.inflight = map[int64]pending{}
	if data == nil {
		s.cursor = map[int]int64{}
		for _, part := range s.assigned {
			pos, ok := s.initial[part]
			if !ok {
				pos = s.Broker.CommittedOffset(s.Group, s.Topic, part)
			}
			if base, err := s.Broker.LogStartOffset(s.Topic, part); err == nil && pos < base {
				pos = base // retention trimmed past the initial position
			}
			if err := s.Broker.SeekCommitted(s.Group, s.Topic, part, pos); err != nil {
				return fmt.Errorf("kafkalite: reset %s/%d to %d: %w", s.Topic, part, pos, err)
			}
			s.cursor[part] = pos
		}
		return nil
	}
	if len(data) < 4 {
		return fmt.Errorf("kafkalite: truncated spout snapshot")
	}
	n := binary.LittleEndian.Uint32(data)
	if len(data) != 4+12*int(n) {
		return fmt.Errorf("kafkalite: spout snapshot length %d, want %d", len(data), 4+12*int(n))
	}
	off := 4
	resume := map[int]int64{}
	for i := 0; i < int(n); i++ {
		part := int(int32(binary.LittleEndian.Uint32(data[off:])))
		resume[part] = int64(binary.LittleEndian.Uint64(data[off+4:]))
		off += 12
	}
	return s.restoreResume(resume)
}

// restoreResume rewinds each assigned partition to its resume offset; a
// partition absent from resume (the assignment changed since the snapshot)
// falls back to the group's committed offset.
func (s *Spout) restoreResume(resume map[int]int64) error {
	s.cursor = map[int]int64{}
	for _, part := range s.assigned {
		pos, ok := resume[part]
		if !ok {
			s.cursor[part] = s.Broker.CommittedOffset(s.Group, s.Topic, part)
			continue
		}
		if err := s.Broker.SeekCommitted(s.Group, s.Topic, part, pos); err != nil {
			return fmt.Errorf("kafkalite: rewind %s/%d to %d: %w", s.Topic, part, pos, err)
		}
		s.cursor[part] = pos
	}
	return nil
}
