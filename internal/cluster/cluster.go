// Package cluster is a discrete-event model of the paper's 30-node testbed
// (16-core Xeons, 1 GbE and 56 Gbps InfiniBand) running the one-to-many
// partitioning pipeline: a source instance partitioning a broadcast stream
// to n matching instances packed 16-per-machine, under each of the paper's
// system variants. It reproduces, at paper scale and in milliseconds of
// real time, the CPU/queueing effects the evaluation measures: upstream
// overload (Fig. 2), transfer-queue blocking (Fig. 3), the throughput and
// latency sweeps (Figs. 13-22), dynamic-rate adaptation (Figs. 23-24),
// communication time and traffic accounting (Figs. 25-28), and rack
// topology (Figs. 33-34).
//
// Costs come from internal/netmodel; the multicast structures and the
// self-adjusting controller are the same internal/multicast and
// internal/control code the live runtime uses.
package cluster

import (
	"fmt"
	"time"

	"whale/internal/control"
	"whale/internal/metrics"
	"whale/internal/multicast"
	"whale/internal/netmodel"
	"whale/internal/obs/attrib"
	"whale/internal/queueing"
	"whale/internal/sim"
)

// Variant names a simulated system.
type Variant int

const (
	// Storm: instance-oriented communication over TCP.
	Storm Variant = iota
	// RDMAStorm: instance-oriented over basic two-sided verbs.
	RDMAStorm
	// WhaleWOC: worker-oriented star over basic verbs.
	WhaleWOC
	// WhaleWOCRDMA: worker-oriented star over the optimized data path.
	WhaleWOCRDMA
	// RDMC: worker-oriented static binomial tree, optimized data path.
	RDMC
	// Whale: worker-oriented self-adjusting non-blocking tree.
	Whale
)

func (v Variant) String() string {
	switch v {
	case Storm:
		return "Storm"
	case RDMAStorm:
		return "RDMA-Storm"
	case WhaleWOC:
		return "Whale-WOC"
	case WhaleWOCRDMA:
		return "Whale-WOC-RDMA"
	case RDMC:
		return "RDMC"
	case Whale:
		return "Whale"
	}
	return fmt.Sprintf("variant(%d)", int(v))
}

// instanceOriented reports whether the variant serializes per instance.
func (v Variant) instanceOriented() bool { return v == Storm || v == RDMAStorm }

// tree reports whether the variant relays through a multicast tree.
func (v Variant) tree() bool { return v == RDMC || v == Whale }

// Config parameterises one simulation run.
type Config struct {
	Variant  Variant
	Machines int // default 30
	Racks    int // default 1
	// Parallelism is n, the matching-operator instance count. Instances
	// pack 16 per machine (the paper's cores-per-machine).
	Parallelism int
	Params      netmodel.Params

	// InputRate is the broadcast stream's Poisson rate (tuples/s); zero
	// selects closed-loop probing of the maximum sustainable rate.
	InputRate float64
	// RateProfile overrides InputRate with a time-varying rate when set.
	RateProfile func(t sim.Time) float64
	// LocationRate is the key-grouped background stream rate.
	LocationRate float64

	// MaxTuples bounds the run (default 4000); Warmup tuples are excluded
	// from statistics (default 10%).
	MaxTuples int
	Warmup    int
	// Duration bounds profile-driven runs.
	Duration sim.Time

	// Q is the source transfer-queue capacity (default 1024).
	Q int
	// Dstar is the non-blocking tree's initial/fixed out-degree cap
	// (default 3, as fixed in Figs. 21-22).
	Dstar int
	// Adaptive enables the §3.3 controller (Whale only).
	Adaptive bool
	// MonitorInterval is the controller Δt (default 10 ms).
	MonitorInterval time.Duration
	// SwitchMoveCost is the modelled delay per reconnection during a
	// dynamic switch (default 50 µs).
	SwitchMoveCost time.Duration
	// TimelineBucket, when set, records per-bucket throughput/latency
	// series (Figs. 23-24).
	TimelineBucket sim.Time

	// TDownOverride and AlphaOverride tune the controller for ablation
	// benches (zero keeps the defaults).
	TDownOverride float64
	AlphaOverride float64

	// Bottleneck injection (ground truth for the attribution experiment):
	// each knob degrades one named component so the analyzer's ranked
	// report can be validated against a known answer. Machine 0 hosts the
	// source, so 0 disables each knob.

	// SlowMachine stretches that machine's matching service time by
	// SlowFactor (default 8) — a slow subscriber.
	SlowMachine int
	SlowFactor  float64
	// HotRelayMachine stretches that machine's relay and dispatch costs by
	// HotRelayFactor (default 8) — a hot interior relay (tree variants).
	HotRelayMachine int
	HotRelayFactor  float64
	// CreditLimitMachine rate-limits the source's sends toward that
	// machine to CreditRatePerSec grants/s (default 2000) — an undersized
	// credit window on link 0→machine.
	CreditLimitMachine int
	CreditRatePerSec   float64

	// HotOperatorFactor (> 1) stretches every matching instance's service
	// time — the whole operator runs hot, in contrast to SlowMachine's
	// single slow subscriber. The autoscale validation experiment injects
	// it and checks that the modeled M/D/1 controller sizes the matching
	// pool to exactly the analytic prediction (DESIGN §15).
	HotOperatorFactor float64
	// AutoscaleRhoHigh / AutoscaleRhoLow are the modeled controller's
	// utilization band (defaults 0.8 / 0.3, matching the live
	// dsps.AutoscaleConfig defaults); sizing targets the band middle.
	AutoscaleRhoHigh float64
	AutoscaleRhoLow  float64

	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Machines <= 0 {
		c.Machines = 30
	}
	if c.Racks <= 0 {
		c.Racks = 1
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 480
	}
	if c.Params == (netmodel.Params{}) {
		c.Params = netmodel.Default30Node()
	}
	if c.MaxTuples <= 0 {
		c.MaxTuples = 4000
	}
	if c.Warmup <= 0 {
		if c.Duration > 0 {
			// Duration-bounded (profile) runs leave MaxTuples at a sentinel;
			// a fraction of it would exclude everything from the stats.
			c.Warmup = 200
		} else {
			c.Warmup = c.MaxTuples / 10
		}
	}
	if c.Q <= 0 {
		c.Q = 1024
	}
	if c.Dstar <= 0 {
		c.Dstar = 3
	}
	if c.MonitorInterval <= 0 {
		c.MonitorInterval = 10 * time.Millisecond
	}
	if c.SwitchMoveCost <= 0 {
		c.SwitchMoveCost = 50 * time.Microsecond
	}
	if c.SlowMachine > 0 && c.SlowFactor <= 0 {
		c.SlowFactor = 8
	}
	if c.HotRelayMachine > 0 && c.HotRelayFactor <= 0 {
		c.HotRelayFactor = 8
	}
	if c.CreditLimitMachine > 0 && c.CreditRatePerSec <= 0 {
		c.CreditRatePerSec = 2000
	}
	if c.AutoscaleRhoHigh <= 0 || c.AutoscaleRhoHigh >= 1 {
		c.AutoscaleRhoHigh = 0.8
	}
	if c.AutoscaleRhoLow <= 0 || c.AutoscaleRhoLow >= c.AutoscaleRhoHigh {
		c.AutoscaleRhoLow = 0.3
		if c.AutoscaleRhoLow >= c.AutoscaleRhoHigh {
			c.AutoscaleRhoLow = c.AutoscaleRhoHigh / 2
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// TimelinePoint is one bucket of a profile run.
type TimelinePoint struct {
	// T is the bucket end (ns).
	T sim.Time
	// Throughput is completed tuples/s in the bucket.
	Throughput float64
	// MeanLatencyNS is the bucket's mean processing latency.
	MeanLatencyNS float64
	// Dstar is the controller's cap at bucket end.
	Dstar int
	// Drops counts source-queue overflows in the bucket.
	Drops int64
}

// Result summarises a run.
type Result struct {
	Variant     Variant
	Parallelism int

	Completed  int64
	Throughput float64 // completed tuples/s

	ProcLatency metrics.Snapshot // emit -> all n instances done
	McastLat    metrics.Snapshot // emit -> last worker arrival

	SrcUtil        float64 // source instance CPU utilisation
	MatchUtil      float64 // representative matching instance utilisation
	DispatcherUtil float64 // busiest dispatcher utilisation

	// CommNSPerTuple is the source's send-side CPU per tuple; SerNSPerTuple
	// the serialization share of it (Figs. 25-26).
	CommNSPerTuple float64
	SerNSPerTuple  float64
	SerFrac        float64

	// TrafficBytesPer10k is the source machine's egress per 10k tuples
	// (Figs. 27-28).
	TrafficBytesPer10k float64

	Drops      int64
	PeakQueue  int
	LoadFactor float64 // λ·(source service time), ρ of the source
	Switches   int
	FinalDstar int

	Timeline []TimelinePoint

	// Bottleneck is the analyzer's ranked attribution over the run's
	// queueing profile (internal/obs/attrib): per-server waiting time by
	// Little's law, the credit limiter's blocked time, and M/D/1
	// comparisons from each server's measured λ and μ.
	Bottleneck attrib.Report

	// Autoscale validation (DESIGN §15): the run's measured matching load
	// folded through the live controller's M/D/1 sizing arithmetic.
	// MatchTe is the measured matching service seconds per tuple (busy
	// time over served count, summed across engaged machines); MatchRho
	// the measured mean per-machine matching utilization. AutoscaleTarget
	// is the machine-granularity size queueing.InstancesForRho picks for
	// the matching pool at the offered rate and measured service time —
	// the count a shuffle-split pool of M/D/1 servers would need to sit at
	// the band middle. AutoscaleAction classifies MatchRho against the
	// band exactly as the live controller would: "scale-up" above
	// AutoscaleRhoHigh, "scale-down" below AutoscaleRhoLow, else "hold".
	MatchTe         float64
	MatchRho        float64
	AutoscaleTarget int
	AutoscaleAction string
}

// coresPerMachine is the paper testbed's core count per machine.
const coresPerMachine = 16

// machinesFor returns the engaged machine count: instances pack 16 per
// machine (multi-core exploitation), so parallelism 480 fills 30 machines.
func machinesFor(parallelism, machines int) int {
	m := (parallelism + coresPerMachine - 1) / coresPerMachine
	if m > machines {
		m = machines
	}
	if m < 1 {
		m = 1
	}
	return m
}

// run state ----------------------------------------------------------------

type tupleState struct {
	emit          sim.Time
	workersLeft   int
	instancesLeft int
	lastWorker    sim.Time
	counted       bool // included in stats (post-warmup)
}

type machine struct {
	id         int
	rack       int
	dispatcher *sim.Server
	instance   *sim.Server // representative matching instance
	nic        *sim.Server
	localInst  int // matching instances hosted
}

type runner struct {
	cfg Config
	p   netmodel.Params
	eng *sim.Engine
	rng *sim.RNG

	machines []*machine
	W        int         // engaged machines
	src      *sim.Server // source instance (its queue is the transfer queue)
	credit   *sim.Server // injected rate limiter on link 0→CreditLimitMachine

	tree     *multicast.Tree // nil for star/instance variants
	dstar    int
	ctrl     *control.Controller
	switches int
	arrivals int64 // since last monitor tick
	paused   bool  // source paused during a dynamic switch

	nextID    int64
	emitted   int64
	completed int64
	drops     int64
	states    map[int64]*tupleState

	procLat  *metrics.Histogram
	mcastLat *metrics.Histogram

	statsStart     sim.Time
	statsStartDone int64
	srcSerNS       int64
	srcCommNS      int64
	srcTraffic     int64
	countedTuples  int64

	// closed-loop tokens
	closedLoop  bool
	outstanding int

	timeline       []TimelinePoint
	bucketStart    sim.Time
	bucketDone     int64
	bucketLatSum   int64
	bucketLatCount int64
	bucketDrops    int64
}

// Run executes one simulation and returns its result.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	r := &runner{
		cfg:      cfg,
		p:        cfg.Params,
		eng:      sim.NewEngine(),
		rng:      sim.NewRNG(cfg.Seed),
		states:   map[int64]*tupleState{},
		procLat:  &metrics.Histogram{},
		mcastLat: &metrics.Histogram{},
		dstar:    cfg.Dstar,
	}
	r.W = machinesFor(cfg.Parallelism, cfg.Machines)
	r.buildMachines()
	r.buildTree()
	if cfg.Variant == Whale && cfg.Adaptive {
		ctl := control.Config{QueueCapacity: cfg.Q, Alpha: 0.5,
			MaxDstar: maxDstarFor(r.W)}
		if cfg.AlphaOverride > 0 {
			ctl.Alpha = cfg.AlphaOverride
		}
		if cfg.TDownOverride > 0 {
			ctl.TDown = cfg.TDownOverride
		}
		r.ctrl = control.NewController(ctl, r.dstar)
		r.scheduleMonitor()
	}
	r.closedLoop = cfg.InputRate == 0 && cfg.RateProfile == nil
	if cfg.TimelineBucket > 0 {
		r.scheduleTimeline()
	}
	r.start()
	r.finishTimeline()
	return r.result()
}

func maxDstarFor(W int) int {
	d := queueing.BinomialSourceDegree(W - 1)
	if d < 1 {
		d = 1
	}
	return d
}

func (r *runner) buildMachines() {
	n := r.cfg.Parallelism
	for m := 0; m < r.W; m++ {
		inst := n / r.W
		if m < n%r.W {
			inst++
		}
		r.machines = append(r.machines, &machine{
			id:         m,
			rack:       m * r.cfg.Racks / r.W,
			dispatcher: sim.NewServer(r.eng, fmt.Sprintf("disp%d", m), 0),
			instance:   sim.NewServer(r.eng, fmt.Sprintf("inst%d", m), 0),
			nic:        sim.NewServer(r.eng, fmt.Sprintf("nic%d", m), 0),
			localInst:  inst,
		})
	}
	// The source instance lives on machine 0; its server queue is the
	// transfer queue with capacity Q.
	r.src = sim.NewServer(r.eng, "source", r.cfg.Q)
	if r.cfg.CreditLimitMachine > 0 && r.cfg.CreditLimitMachine < r.W {
		r.credit = sim.NewServer(r.eng, "credit", 0)
	}
	// Background location stream on every engaged instance.
	if r.cfg.LocationRate > 0 {
		perInst := r.cfg.LocationRate / float64(n)
		horizon := r.horizon()
		for _, m := range r.machines {
			m := m
			sim.Arrivals(r.eng, r.rng, horizon, func(sim.Time) float64 { return perInst }, func() {
				m.instance.Submit(r.p.LocationCost.Nanoseconds(), nil)
			})
		}
	}
}

func (r *runner) horizon() sim.Time {
	if r.cfg.Duration > 0 {
		return r.cfg.Duration
	}
	return sim.Time(1 << 62)
}

// buildTree constructs the worker-level multicast structure for tree
// variants. Node ids are machine ids; machine 0 (the source's) is the root.
func (r *runner) buildTree() {
	if !r.cfg.Variant.tree() {
		return
	}
	dests := make([]multicast.NodeID, 0, r.W-1)
	for m := 1; m < r.W; m++ {
		dests = append(dests, multicast.NodeID(m))
	}
	if r.cfg.Variant == RDMC {
		r.tree = multicast.BuildBinomial(0, dests)
		return
	}
	d := r.dstar
	if b := maxDstarFor(r.W); d > b {
		d = b
	}
	r.dstar = d
	r.tree = multicast.BuildNonBlocking(0, dests, d)
}

// sourceCost returns the source's per-tuple service time and the
// serialization portion of it, plus the per-message egress plan.
func (r *runner) sourceCost() (total, ser sim.Time) {
	p := r.p
	fixed := p.TEmitFixed.Nanoseconds()
	switch {
	case r.cfg.Variant.instanceOriented():
		remote := r.remoteInstances()
		per := p.TSerialize.Nanoseconds()
		tx := p.TKernelMsg.Nanoseconds()
		if r.cfg.Variant == RDMAStorm {
			tx = p.TPostBasic.Nanoseconds()
		}
		return fixed + int64(remote)*(per+tx), int64(remote) * per
	case r.cfg.Variant.tree():
		children := len(r.tree.Children(0))
		return fixed + p.TSerialize.Nanoseconds() + int64(children)*p.TPostOpt.Nanoseconds(),
			p.TSerialize.Nanoseconds()
	default: // worker-oriented star
		post := p.TPostOpt.Nanoseconds()
		if r.cfg.Variant == WhaleWOC {
			post = p.TPostBasic.Nanoseconds()
		}
		return fixed + p.TSerialize.Nanoseconds() + int64(r.W-1)*post,
			p.TSerialize.Nanoseconds()
	}
}

func (r *runner) remoteInstances() int {
	return r.cfg.Parallelism - r.machines[0].localInst
}

// start drives arrivals and runs the simulation to completion.
func (r *runner) start() {
	if r.closedLoop {
		// Closed loop: keep a fixed number of tuples in flight to probe
		// the maximum sustainable rate.
		const tokens = 24
		r.outstanding = 0
		for i := 0; i < tokens; i++ {
			r.emitNext()
		}
		r.eng.Run()
		return
	}
	rate := r.cfg.RateProfile
	if rate == nil {
		fixed := r.cfg.InputRate
		rate = func(sim.Time) float64 { return fixed }
	}
	if r.cfg.Duration == 0 {
		// Tuple-bounded run: stop the arrival process once the budget is
		// spent by returning a zero rate.
		inner := rate
		rate = func(t sim.Time) float64 {
			if r.emitted >= int64(r.cfg.MaxTuples) {
				return 0
			}
			return inner(t)
		}
	}
	horizon := r.horizon()
	sim.Arrivals(r.eng, r.rng, horizon, rate, func() {
		if r.emitted < int64(r.cfg.MaxTuples) || r.cfg.Duration > 0 {
			r.emitTuple()
		}
	})
	if r.cfg.Duration > 0 {
		r.eng.RunUntil(r.cfg.Duration)
		// Let in-flight work finish.
		r.eng.Run()
	} else {
		r.eng.Run()
	}
}

// emitNext is the closed-loop emitter.
func (r *runner) emitNext() {
	if r.emitted >= int64(r.cfg.MaxTuples) {
		return
	}
	r.outstanding++
	r.emitTuple()
}

// emitTuple pushes one broadcast tuple into the source.
func (r *runner) emitTuple() {
	r.emitted++
	r.arrivals++
	id := r.nextID
	r.nextID++
	st := &tupleState{
		emit:          r.eng.Now(),
		workersLeft:   r.W - 1,
		instancesLeft: r.cfg.Parallelism,
		counted:       r.emitted > int64(r.cfg.Warmup),
	}
	if st.counted && r.countedTuples == 0 {
		r.statsStart = r.eng.Now()
		r.statsStartDone = r.completed
	}
	if st.counted {
		r.countedTuples++
	}
	r.states[id] = st

	total, ser := r.sourceCost()
	ok := r.src.Submit(total, func() {
		if st.counted {
			r.srcCommNS += total
			r.srcSerNS += ser
		}
		r.transmit(id, st)
	})
	if !ok {
		// Transfer queue overflow: stream input loss (Definition 4).
		r.drops++
		r.bucketDrops++
		delete(r.states, id)
		if r.closedLoop {
			r.outstanding--
			r.emitNext()
		}
	}
}

// perPost returns the variant's per-message sender post cost.
func (r *runner) perPost() int64 {
	switch {
	case r.cfg.Variant == Storm:
		return r.p.TKernelMsg.Nanoseconds()
	case r.cfg.Variant == RDMAStorm || r.cfg.Variant == WhaleWOC:
		return r.p.TPostBasic.Nanoseconds()
	default:
		return r.p.TPostOpt.Nanoseconds()
	}
}

// transmit fans the tuple out per the variant. Messages leave the source
// staggered by the per-message post cost: "the source establishes an RDMA
// channel to each directly cascading instance and sends a tuple to every
// cascading instance sequentially" — the timing premise of the paper's
// tree analysis (§3.2).
func (r *runner) transmit(id int64, st *tupleState) {
	// Local instances complete without the network.
	r.deliverInstances(id, st, r.machines[0])
	post := r.perPost()
	j := int64(0)
	switch {
	case r.cfg.Variant.instanceOriented():
		size := r.p.InstanceMsgBytes()
		for m := 1; m < r.W; m++ {
			mm := r.machines[m]
			for i := 0; i < mm.localInst; i++ {
				last := i == mm.localInst-1
				j++
				r.eng.After(j*post, func() { r.sendMsg(id, st, 0, mm, size, 1, last) })
			}
		}
	case r.cfg.Variant.tree():
		for _, c := range r.tree.Children(0) {
			mm := r.machines[c]
			j++
			r.eng.After(j*post, func() {
				r.sendMsg(id, st, 0, mm, r.p.WorkerMsgBytes(mm.localInst), mm.localInst, true)
			})
		}
	default:
		for m := 1; m < r.W; m++ {
			mm := r.machines[m]
			j++
			r.eng.After(j*post, func() {
				r.sendMsg(id, st, 0, mm, r.p.WorkerMsgBytes(mm.localInst), mm.localInst, true)
			})
		}
	}
}

// sendMsg moves one message from machine `from` to machine `to`:
// NIC egress (bandwidth) -> propagation -> {relay fan-out, dispatcher ->
// instances}. Relaying happens on arrival, before deserialization: Whale's
// relays forward the raw ring bytes (§4), so the relay path does not pay
// the dispatcher. kTasks is the local fan-out at the destination;
// lastForWorker marks the message that completes the worker's delivery.
func (r *runner) sendMsg(id int64, st *tupleState, from int, to *machine, size, kTasks int, lastForWorker bool) {
	// Injected credit limit: sends from the source toward the limited
	// machine first wait for a grant from the rate-limited credit server;
	// the server's WaitNS is exactly the link's credit-wait stall.
	if r.credit != nil && from == 0 && to.id == r.cfg.CreditLimitMachine {
		grant := int64(1e9 / r.cfg.CreditRatePerSec)
		r.credit.Submit(grant, func() {
			r.sendMsgDirect(id, st, from, to, size, kTasks, lastForWorker)
		})
		return
	}
	r.sendMsgDirect(id, st, from, to, size, kTasks, lastForWorker)
}

func (r *runner) sendMsgDirect(id int64, st *tupleState, from int, to *machine, size, kTasks int, lastForWorker bool) {
	bw := r.p.InfinibandBps
	if r.cfg.Variant == Storm {
		bw = r.p.EthernetBps
	}
	src := r.machines[from]
	if st.counted && from == 0 {
		r.srcTraffic += int64(size)
	}
	wire := netmodel.WireTime(size, bw).Nanoseconds()
	src.nic.Submit(wire, func() {
		prop := r.p.Propagation.Nanoseconds()
		if src.rack != to.rack {
			prop += r.p.InterRackExtra.Nanoseconds()
		}
		r.eng.After(prop, func() {
			// Tree relay first, staggered per child post.
			if r.cfg.Variant.tree() {
				post := r.p.TPostOpt.Nanoseconds()
				if r.cfg.HotRelayMachine > 0 && to.id == r.cfg.HotRelayMachine {
					post = int64(float64(post) * r.cfg.HotRelayFactor)
				}
				for i, c := range r.tree.Children(multicast.NodeID(to.id)) {
					cm := r.machines[c]
					to.dispatcher.Submit(post, nil) // relay CPU accounting
					r.eng.After(int64(i+1)*post, func() {
						r.sendMsg(id, st, to.id, cm, size, cm.localInst, true)
					})
				}
			}
			dispCost := r.p.TDeserialize.Nanoseconds() + int64(kTasks)*r.p.TDispatchPerTask.Nanoseconds()
			if r.cfg.HotRelayMachine > 0 && to.id == r.cfg.HotRelayMachine {
				dispCost = int64(float64(dispCost) * r.cfg.HotRelayFactor)
			}
			to.dispatcher.Submit(dispCost, func() {
				if lastForWorker {
					r.workerArrived(id, st)
					r.deliverInstances(id, st, to)
				}
			})
		})
	})
}

// workerArrived records multicast progress.
func (r *runner) workerArrived(id int64, st *tupleState) {
	st.workersLeft--
	if r.eng.Now() > st.lastWorker {
		st.lastWorker = r.eng.Now()
	}
	if st.workersLeft == 0 && st.counted {
		r.mcastLat.Observe(st.lastWorker - st.emit)
	}
}

// deliverInstances runs the matching work for every instance on the
// machine (modelled by one representative server, counted localInst times).
// When a machine hosts more instances than cores (beyond the paper's
// 16-per-machine packing), the representative's service time stretches by
// the oversubscription factor — cores are shared.
func (r *runner) deliverInstances(id int64, st *tupleState, m *machine) {
	if m.localInst == 0 {
		r.maybeComplete(id, st, 0)
		return
	}
	cost := r.p.MatchCost(r.cfg.Parallelism).Nanoseconds()
	if m.localInst > coresPerMachine {
		cost = cost * int64(m.localInst) / coresPerMachine
	}
	if r.cfg.HotOperatorFactor > 1 {
		cost = int64(float64(cost) * r.cfg.HotOperatorFactor)
	}
	if r.cfg.SlowMachine > 0 && m.id == r.cfg.SlowMachine {
		cost = int64(float64(cost) * r.cfg.SlowFactor)
	}
	k := m.localInst
	m.instance.Submit(cost, func() {
		r.maybeComplete(id, st, k)
	})
}

func (r *runner) maybeComplete(id int64, st *tupleState, k int) {
	st.instancesLeft -= k
	if st.instancesLeft > 0 {
		return
	}
	r.completed++
	r.bucketDone++
	lat := r.eng.Now() - st.emit
	if st.counted {
		r.procLat.Observe(lat)
		r.bucketLatSum += lat
		r.bucketLatCount++
	}
	delete(r.states, id)
	if r.closedLoop {
		r.outstanding--
		r.emitNext()
	}
}

// finished reports whether a tuple-bounded run has no work left (tickers
// must stop rescheduling or the event loop never drains).
func (r *runner) finished() bool {
	if r.cfg.Duration > 0 {
		return r.eng.Now() >= r.cfg.Duration
	}
	return r.emitted >= int64(r.cfg.MaxTuples) && len(r.states) == 0
}

// scheduleMonitor runs the §3.3 controller on simulated time.
func (r *runner) scheduleMonitor() {
	dt := r.cfg.MonitorInterval.Nanoseconds()
	var tick func()
	tick = func() {
		if r.finished() {
			return
		}
		count := r.arrivals
		r.arrivals = 0
		r.ctrl.ObserveRate(float64(count), float64(dt)/1e9)
		// Observed per-replica time: the true source cost divided by the
		// current out-degree (what the QueueMonitor would measure).
		total, _ := r.sourceCost()
		d := len(r.tree.Children(0))
		if d < 1 {
			d = 1
		}
		r.ctrl.ObserveTe(float64(total) / float64(d) / 1e9)
		dec := r.ctrl.Evaluate(r.src.QueueLen())
		if dec.Action != control.Hold && !r.paused {
			r.applySwitch(dec.NewDstar)
		}
		r.eng.After(dt, tick)
	}
	r.eng.After(dt, tick)
}

// applySwitch restructures the tree and models the switching delay by
// pausing the source's output (the paper's Theorem 4 analysis window).
func (r *runner) applySwitch(newDstar int) {
	next := r.tree.Clone()
	dir, moves := multicast.Switch(next, r.dstar, newDstar)
	r.dstar = newDstar
	if dir == multicast.NoSwitch || len(moves) == 0 {
		return
	}
	r.switches++
	delay := sim.Time(len(moves))*r.cfg.SwitchMoveCost.Nanoseconds() + 2*r.p.Propagation.Nanoseconds()
	r.paused = true
	// The switch occupies the source (output rate drops to zero while the
	// ControlMessages propagate and ACKs return).
	r.src.Submit(delay, func() {
		r.tree = next
		r.paused = false
	})
}

// scheduleTimeline records bucketed series for the dynamic figures.
func (r *runner) scheduleTimeline() {
	b := r.cfg.TimelineBucket
	var tick func()
	tick = func() {
		r.flushBucket(r.eng.Now())
		if r.finished() {
			return
		}
		r.eng.After(b, tick)
	}
	r.eng.After(b, tick)
}

func (r *runner) flushBucket(now sim.Time) {
	dt := now - r.bucketStart
	if dt <= 0 {
		return
	}
	pt := TimelinePoint{
		T:          now,
		Throughput: float64(r.bucketDone) / (float64(dt) / 1e9),
		Dstar:      r.dstar,
		Drops:      r.bucketDrops,
	}
	if r.bucketLatCount > 0 {
		pt.MeanLatencyNS = float64(r.bucketLatSum) / float64(r.bucketLatCount)
	}
	r.timeline = append(r.timeline, pt)
	r.bucketStart = now
	r.bucketDone, r.bucketLatSum, r.bucketLatCount, r.bucketDrops = 0, 0, 0, 0
}

func (r *runner) finishTimeline() {
	if r.cfg.TimelineBucket > 0 && r.bucketDone > 0 {
		r.flushBucket(r.eng.Now())
	}
}

func (r *runner) result() Result {
	res := Result{
		Variant:     r.cfg.Variant,
		Parallelism: r.cfg.Parallelism,
		Completed:   r.completed,
		ProcLatency: r.procLat.Snapshot(),
		McastLat:    r.mcastLat.Snapshot(),
		Drops:       r.drops,
		PeakQueue:   r.src.PeakQueue(),
		Switches:    r.switches,
		FinalDstar:  r.dstar,
		Timeline:    r.timeline,
	}
	span := r.eng.Now() - r.statsStart
	if span > 0 {
		res.Throughput = float64(r.completed-r.statsStartDone) / (float64(span) / 1e9)
	}
	res.SrcUtil = r.src.Utilization()
	res.MatchUtil = r.machines[0].instance.Utilization()
	for _, m := range r.machines {
		if u := m.dispatcher.Utilization(); u > res.DispatcherUtil {
			res.DispatcherUtil = u
		}
		if u := m.instance.Utilization(); u > res.MatchUtil {
			res.MatchUtil = u
		}
	}
	if r.countedTuples > 0 {
		res.CommNSPerTuple = float64(r.srcCommNS) / float64(r.countedTuples)
		res.SerNSPerTuple = float64(r.srcSerNS) / float64(r.countedTuples)
		res.TrafficBytesPer10k = float64(r.srcTraffic) / float64(r.countedTuples) * 10000
	}
	if res.CommNSPerTuple > 0 {
		res.SerFrac = res.SerNSPerTuple / res.CommNSPerTuple
	}
	total, _ := r.sourceCost()
	if r.cfg.InputRate > 0 {
		res.LoadFactor = r.cfg.InputRate * float64(total) / 1e9
	} else {
		res.LoadFactor = res.Throughput * float64(total) / 1e9
	}
	res.Bottleneck = r.attribReport()
	r.modelAutoscale(&res)
	return res
}

// modelAutoscale folds the run's matching measurements through the live
// autoscale controller's sizing model (internal/dsps/autoscale.go): the
// pool's total execution rate λ and measured per-tuple service time te size
// the operator at ceil(λ·te/ρ_target) servers. The DES validates the loop's
// arithmetic — a deterministic injected hot operator must produce exactly
// the analytically predicted target (PredictedAutoscaleTarget).
func (r *runner) modelAutoscale(res *Result) {
	now := r.eng.Now()
	var served, busyNS int64
	engaged := 0
	for _, m := range r.machines {
		if m.localInst == 0 {
			continue
		}
		engaged++
		served += m.instance.Served
		busyNS += m.instance.BusyNS
	}
	if now <= 0 || served == 0 || busyNS == 0 || engaged == 0 {
		return
	}
	res.MatchTe = float64(busyNS) / float64(served) / 1e9
	res.MatchRho = float64(busyNS) / float64(engaged) / float64(now)
	// Total execution rate across the pool: every engaged machine handles
	// the full broadcast stream, at the nominal rate when one is configured
	// (the controller sizes for offered load) or the measured throughput on
	// closed-loop runs.
	rate := res.Throughput
	if r.cfg.InputRate > 0 {
		rate = r.cfg.InputRate
	}
	if rate <= 0 {
		return
	}
	rhoT := (r.cfg.AutoscaleRhoHigh + r.cfg.AutoscaleRhoLow) / 2
	res.AutoscaleTarget = queueing.InstancesForRho(rate*float64(engaged), res.MatchTe, rhoT)
	switch {
	case res.MatchRho > r.cfg.AutoscaleRhoHigh && res.AutoscaleTarget > engaged:
		res.AutoscaleAction = "scale-up"
	case res.MatchRho < r.cfg.AutoscaleRhoLow && res.AutoscaleTarget < engaged:
		res.AutoscaleAction = "scale-down"
	default:
		res.AutoscaleAction = "hold"
	}
}

// PredictedAutoscaleTarget returns the analytic machine-count the modeled
// autoscale controller must pick for cfg's matching pool: engaged machines
// times the offered rate gives the pool's execution rate, the netmodel's
// (optionally hot-stretched) match cost the deterministic service time, and
// queueing.InstancesForRho the band-middle sizing. Zero when cfg has no
// nominal input rate (closed-loop runs have no a-priori λ). The bottleneck
// experiment compares a hot-operator run's modeled target against this.
func PredictedAutoscaleTarget(cfg Config) int {
	c := cfg.withDefaults()
	if c.InputRate <= 0 {
		return 0
	}
	engaged := machinesFor(c.Parallelism, c.Machines)
	// Mirror the runner's integer cost arithmetic exactly so the predicted
	// te is bit-identical to the measured one.
	costNS := c.Params.MatchCost(c.Parallelism).Nanoseconds()
	if c.HotOperatorFactor > 1 {
		costNS = int64(float64(costNS) * c.HotOperatorFactor)
	}
	rhoT := (c.AutoscaleRhoHigh + c.AutoscaleRhoLow) / 2
	return queueing.InstancesForRho(c.InputRate*float64(engaged), float64(costNS)/1e9, rhoT)
}

// attribReport folds the run's per-server queueing into an analyzer input:
// each server's accumulated wait is its stall, mean queue length comes from
// Little's law (WaitNS over the window), and λ/μ from its served count and
// busy time. The fold is pure arithmetic over the deterministic simulation,
// so equal seeds yield byte-identical reports.
func (r *runner) attribReport() attrib.Report {
	now := r.eng.Now()
	in := attrib.Input{WindowNS: now}
	if now <= 0 {
		return attrib.Analyze(in)
	}
	winSec := float64(now) / 1e9
	if r.credit != nil {
		in.Links = append(in.Links, attrib.LinkSample{
			From: 0, To: int32(r.cfg.CreditLimitMachine),
			CreditWaitNS: r.credit.WaitNS,
			Sent:         r.credit.Served,
			Queued:       r.credit.QueueLen(),
		})
	}
	addServer := func(id int, role string, s *sim.Server) {
		ws := attrib.WorkerSample{
			Worker: int32(id), Role: role,
			StallNS:  s.WaitNS,
			BusyNS:   s.BusyNS,
			QueueLen: float64(s.WaitNS) / float64(now), // Little's law
		}
		if s.Served > 0 && s.BusyNS > 0 {
			ws.ArrivalPerSec = float64(s.Served) / winSec
			ws.ServicePerSec = float64(s.Served) / (float64(s.BusyNS) / 1e9)
		}
		in.Workers = append(in.Workers, ws)
	}
	addServer(0, attrib.RoleSource, r.src)
	for _, m := range r.machines {
		addServer(m.id, attrib.RoleExecutor, m.instance)
		if r.cfg.Variant.tree() && m.id > 0 {
			addServer(m.id, attrib.RoleRelay, m.dispatcher)
		}
	}
	return attrib.Analyze(in)
}
