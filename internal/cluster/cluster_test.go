package cluster

import (
	"testing"
	"time"

	"whale/internal/netmodel"
	"whale/internal/sim"
)

// probe runs a closed-loop simulation for a variant at parallelism n.
func probe(t *testing.T, v Variant, n int) Result {
	t.Helper()
	res := Run(Config{Variant: v, Parallelism: n, MaxTuples: 1500, Seed: 7})
	if res.Completed == 0 || res.Throughput <= 0 {
		t.Fatalf("%v/%d: no progress: %+v", v, n, res)
	}
	return res
}

func TestVariantStrings(t *testing.T) {
	for v, want := range map[Variant]string{
		Storm: "Storm", RDMAStorm: "RDMA-Storm", WhaleWOC: "Whale-WOC",
		WhaleWOCRDMA: "Whale-WOC-RDMA", RDMC: "RDMC", Whale: "Whale",
	} {
		if v.String() != want {
			t.Fatalf("%d -> %q", int(v), v)
		}
	}
}

func TestMachinesFor(t *testing.T) {
	cases := []struct{ n, m, want int }{
		{480, 30, 30}, {120, 30, 8}, {16, 30, 1}, {17, 30, 2}, {1000, 30, 30}, {1, 30, 1},
	}
	for _, c := range cases {
		if got := machinesFor(c.n, c.m); got != c.want {
			t.Fatalf("machinesFor(%d,%d)=%d want %d", c.n, c.m, got, c.want)
		}
	}
}

// TestFig13Ordering checks the headline ordering at parallelism 480:
// Storm < RDMA-Storm < Whale-WOC < Whale-WOC-RDMA <= Whale, with Whale tens
// of times over Storm.
func TestFig13Ordering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	storm := probe(t, Storm, 480)
	rstorm := probe(t, RDMAStorm, 480)
	woc := probe(t, WhaleWOC, 480)
	wocRdma := probe(t, WhaleWOCRDMA, 480)
	whale := probe(t, Whale, 480)

	seq := []Result{storm, rstorm, woc, wocRdma}
	for i := 0; i+1 < len(seq); i++ {
		if !(seq[i].Throughput < seq[i+1].Throughput) {
			t.Fatalf("ordering broken at %v (%.0f) vs %v (%.0f)",
				seq[i].Variant, seq[i].Throughput, seq[i+1].Variant, seq[i+1].Throughput)
		}
	}
	if whale.Throughput < wocRdma.Throughput*0.95 {
		t.Fatalf("Whale (%.0f) below Whale-WOC-RDMA (%.0f)", whale.Throughput, wocRdma.Throughput)
	}
	if ratio := whale.Throughput / storm.Throughput; ratio < 20 {
		t.Fatalf("Whale/Storm = %.1f, want tens", ratio)
	}
	if ratio := rstorm.Throughput / storm.Throughput; ratio < 1.3 || ratio > 10 {
		t.Fatalf("RDMA-Storm/Storm = %.1f, want low single digits", ratio)
	}
}

// TestFig13Monotonicity: baselines decline with parallelism, Whale rises.
func TestFig13Monotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	for _, v := range []Variant{Storm, RDMAStorm} {
		lo := probe(t, v, 120)
		hi := probe(t, v, 480)
		if !(hi.Throughput < lo.Throughput) {
			t.Fatalf("%v throughput did not decline: %.0f -> %.0f", v, lo.Throughput, hi.Throughput)
		}
	}
	lo := probe(t, Whale, 120)
	hi := probe(t, Whale, 480)
	if !(hi.Throughput > lo.Throughput) {
		t.Fatalf("Whale throughput did not rise: %.0f -> %.0f", lo.Throughput, hi.Throughput)
	}
}

// TestFig14LatencyShape: baselines' latency grows with parallelism; Whale's
// falls; at 480 Whale cuts latency by >90%.
func TestFig14LatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	stormLo, stormHi := probe(t, Storm, 120), probe(t, Storm, 480)
	if !(stormHi.ProcLatency.Mean > stormLo.ProcLatency.Mean) {
		t.Fatalf("Storm latency did not grow: %.0f -> %.0f", stormLo.ProcLatency.Mean, stormHi.ProcLatency.Mean)
	}
	whaleLo, whaleHi := probe(t, Whale, 120), probe(t, Whale, 480)
	if !(whaleHi.ProcLatency.Mean < whaleLo.ProcLatency.Mean) {
		t.Fatalf("Whale latency did not fall: %.0f -> %.0f", whaleLo.ProcLatency.Mean, whaleHi.ProcLatency.Mean)
	}
	if red := 1 - whaleHi.ProcLatency.Mean/stormHi.ProcLatency.Mean; red < 0.9 {
		t.Fatalf("Whale latency reduction %.2f, want > 0.9", red)
	}
}

// TestFig2SourceOverload: in Storm the source saturates while downstream
// idles as parallelism grows (the paper's motivating observation).
func TestFig2SourceOverload(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	res := probe(t, Storm, 480)
	if res.SrcUtil < 0.9 {
		t.Fatalf("source utilisation %.2f, want ~1", res.SrcUtil)
	}
	if res.MatchUtil > 0.5 {
		t.Fatalf("downstream utilisation %.2f, want low", res.MatchUtil)
	}
	// Serialization is a large share of Storm's communication time.
	if res.SerFrac < 0.2 || res.SerFrac > 0.8 {
		t.Fatalf("Storm serialization share %.2f", res.SerFrac)
	}
}

// TestFig26SerializationShares: RDMA-Storm's communication time is
// dominated by serialization; Whale's is not.
func TestFig26SerializationShares(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	rstorm := probe(t, RDMAStorm, 480)
	whale := probe(t, Whale, 480)
	if !(rstorm.SerFrac > 0.6) {
		t.Fatalf("RDMA-Storm serialization share %.2f, want > 0.6", rstorm.SerFrac)
	}
	if !(whale.SerFrac < rstorm.SerFrac) {
		t.Fatalf("Whale share %.2f not below RDMA-Storm %.2f", whale.SerFrac, rstorm.SerFrac)
	}
	// Fig. 25: Whale's communication time per tuple is a tiny fraction of
	// Storm's.
	storm := probe(t, Storm, 480)
	if whale.CommNSPerTuple > 0.1*storm.CommNSPerTuple {
		t.Fatalf("Whale comm time %.0f not <10%% of Storm %.0f", whale.CommNSPerTuple, storm.CommNSPerTuple)
	}
}

// TestFig27Traffic: Whale's traffic per 10k tuples is ~90% below Storm's
// and nearly flat in parallelism.
func TestFig27Traffic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	storm := probe(t, Storm, 480)
	whale := probe(t, Whale, 480)
	if red := 1 - whale.TrafficBytesPer10k/storm.TrafficBytesPer10k; red < 0.85 {
		t.Fatalf("traffic reduction %.2f, want ~0.9", red)
	}
	whaleLo := probe(t, Whale, 240)
	growth := whale.TrafficBytesPer10k / whaleLo.TrafficBytesPer10k
	if growth > 2.2 {
		t.Fatalf("Whale traffic grew %.1fx from 240 to 480", growth)
	}
	stormLo := probe(t, Storm, 240)
	if sg := storm.TrafficBytesPer10k / stormLo.TrafficBytesPer10k; sg < 1.8 {
		t.Fatalf("Storm traffic should roughly double (got %.2fx)", sg)
	}
}

// TestFig3RDMCBlocking: at rising input rates, RDMC's source queue
// eventually overflows (load factor > 1 -> drops), while the same rate is
// fine for Whale's adapted tree.
func TestFig3RDMCBlocking(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	// Find the breaking rate for RDMC at 480 instances.
	base := Run(Config{Variant: RDMC, Parallelism: 480, MaxTuples: 1500, Seed: 3})
	lowRate := base.Throughput * 0.5
	highRate := base.Throughput * 4
	low := Run(Config{Variant: RDMC, Parallelism: 480, InputRate: lowRate, MaxTuples: 2000, Seed: 3})
	if low.Drops > 0 {
		t.Fatalf("RDMC dropped at half capacity: %d", low.Drops)
	}
	high := Run(Config{Variant: RDMC, Parallelism: 480, InputRate: highRate, MaxTuples: 6000, Q: 64, Seed: 3})
	if high.Drops == 0 {
		t.Fatalf("RDMC did not overflow at 4x capacity (peak queue %d)", high.PeakQueue)
	}
	if high.LoadFactor <= 1 {
		t.Fatalf("load factor %.2f, want > 1", high.LoadFactor)
	}
	// Latency blows up near saturation.
	if !(high.ProcLatency.Mean > 2*low.ProcLatency.Mean) {
		t.Fatalf("latency did not spike: %.0f vs %.0f", low.ProcLatency.Mean, high.ProcLatency.Mean)
	}
}

// TestFig21MulticastLatencyOrdering: past the star's saturation point (the
// paper drives the maximum rate the system sustains), the relay trees
// deliver to all workers far sooner on average, and the non-blocking tree
// is at least as good as the static binomial.
func TestFig21MulticastLatencyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	// Drive all three at the same rate: 90% of the binomial's capacity.
	rate := probe(t, RDMC, 480).Throughput * 0.9
	star := Run(Config{Variant: WhaleWOCRDMA, Parallelism: 480, InputRate: rate, MaxTuples: 3000, Seed: 5})
	rdmc := Run(Config{Variant: RDMC, Parallelism: 480, InputRate: rate, MaxTuples: 3000, Seed: 5})
	whale := Run(Config{Variant: Whale, Parallelism: 480, InputRate: rate, MaxTuples: 3000, Seed: 5})
	if !(whale.McastLat.Mean < star.McastLat.Mean) {
		t.Fatalf("non-blocking mcast %.0f not below star %.0f", whale.McastLat.Mean, star.McastLat.Mean)
	}
	if !(rdmc.McastLat.Mean < star.McastLat.Mean) {
		t.Fatalf("binomial mcast %.0f not below star %.0f", rdmc.McastLat.Mean, star.McastLat.Mean)
	}
	if whale.McastLat.Mean > rdmc.McastLat.Mean*1.25 {
		t.Fatalf("non-blocking mcast %.0f far above binomial %.0f", whale.McastLat.Mean, rdmc.McastLat.Mean)
	}
}

// TestFig23DynamicAdaptation: the paper's step profile; the adaptive tree
// must switch (d* falls when the rate spikes) and sustain the load with far
// fewer drops than the static binomial under the same profile and queue.
func TestFig23DynamicAdaptation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	profile := func(now sim.Time) float64 {
		sec := float64(now) / 1e9
		switch {
		case sec < 0.25:
			return 30000
		case sec < 0.5:
			return 60000
		case sec < 0.75:
			return 80000
		case sec < 1.0:
			return 100000
		default:
			return 80000
		}
	}
	cfg := Config{
		Variant: Whale, Parallelism: 480, Adaptive: true,
		Params:      netmodel.DynamicProfile(),
		RateProfile: profile, Duration: 125e7, Q: 512,
		MonitorInterval: 5 * time.Millisecond,
		TimelineBucket:  5e7, MaxTuples: 1 << 30, Seed: 11,
	}
	res := Run(cfg)
	if res.Switches == 0 {
		t.Fatal("adaptive run never switched")
	}
	if res.FinalDstar <= 0 {
		t.Fatalf("final d* %d", res.FinalDstar)
	}
	if len(res.Timeline) < 10 {
		t.Fatalf("timeline has %d points", len(res.Timeline))
	}
	// Throughput in the 100k phase must approach the offered rate.
	var peak float64
	for _, pt := range res.Timeline {
		if pt.Throughput > peak {
			peak = pt.Throughput
		}
	}
	if peak < 70000 {
		t.Fatalf("peak bucket throughput %.0f, want near 100k", peak)
	}
}

// TestFig33RacksStable: Whale's throughput is stable across rack counts.
func TestFig33RacksStable(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	var base float64
	for racks := 1; racks <= 5; racks++ {
		res := Run(Config{Variant: Whale, Parallelism: 480, Racks: racks, MaxTuples: 1200, Seed: 2})
		if base == 0 {
			base = res.Throughput
			continue
		}
		if d := res.Throughput / base; d < 0.9 || d > 1.1 {
			t.Fatalf("racks=%d throughput deviates %.2fx", racks, d)
		}
	}
}

// TestDeterminism: identical configs yield identical results.
func TestDeterminism(t *testing.T) {
	a := Run(Config{Variant: Whale, Parallelism: 240, MaxTuples: 800, Seed: 9})
	b := Run(Config{Variant: Whale, Parallelism: 240, MaxTuples: 800, Seed: 9})
	if a.Throughput != b.Throughput || a.ProcLatency.Mean != b.ProcLatency.Mean || a.Completed != b.Completed {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestContributionSplit reproduces the Fig. 13 decomposition: of the total
// improvement from RDMA-Storm to Whale, worker-oriented communication
// contributes the most, with the optimized primitives and the tree both
// visible.
func TestContributionSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated-cluster run is too slow for -short")
	}
	rstorm := probe(t, RDMAStorm, 480).Throughput
	woc := probe(t, WhaleWOC, 480).Throughput
	wocRdma := probe(t, WhaleWOCRDMA, 480).Throughput
	whale := probe(t, Whale, 480).Throughput
	total := whale - rstorm
	cWOC := (woc - rstorm) / total
	cOpt := (wocRdma - woc) / total
	cTree := (whale - wocRdma) / total
	if cWOC < 0.3 {
		t.Fatalf("WOC contribution %.2f, want dominant (paper: 0.54)", cWOC)
	}
	if cOpt <= 0 || cTree <= 0 {
		t.Fatalf("contributions: woc=%.2f opt=%.2f tree=%.2f; all must be positive", cWOC, cOpt, cTree)
	}
}

// TestHotOperatorAutoscale validates the closed loop's arithmetic on the
// DES: an operator-wide hot spot (HotOperatorFactor) must push the matching
// pool's measured utilization over the band and make the modeled controller
// size it to exactly the analytic M/D/1 prediction, while the unperturbed
// run sits far under the band and sizes down.
func TestHotOperatorAutoscale(t *testing.T) {
	base := Config{Variant: Whale, Parallelism: 480, InputRate: 3000, MaxTuples: 800, Seed: 7}
	hot := base
	hot.HotOperatorFactor = 14

	b := Run(base)
	if b.AutoscaleAction != "scale-down" {
		t.Fatalf("unperturbed run: action %q (rho %.3f, target %d), want scale-down",
			b.AutoscaleAction, b.MatchRho, b.AutoscaleTarget)
	}

	h := Run(hot)
	if h.AutoscaleAction != "scale-up" {
		t.Fatalf("hot operator: action %q (rho %.3f, target %d), want scale-up",
			h.AutoscaleAction, h.MatchRho, h.AutoscaleTarget)
	}
	want := PredictedAutoscaleTarget(hot)
	if h.AutoscaleTarget != want {
		t.Fatalf("hot operator: modeled target %d, analytic prediction %d (rho %.3f, te %gs)",
			h.AutoscaleTarget, want, h.MatchRho, h.MatchTe)
	}
	if h.AutoscaleTarget <= b.AutoscaleTarget {
		t.Fatalf("hot target %d not above base target %d", h.AutoscaleTarget, b.AutoscaleTarget)
	}
	// Determinism: equal seeds reproduce the decision byte-for-byte.
	h2 := Run(hot)
	if h2.AutoscaleTarget != h.AutoscaleTarget || h2.MatchTe != h.MatchTe || h2.AutoscaleAction != h.AutoscaleAction {
		t.Fatalf("non-deterministic autoscale model: %v/%v/%v vs %v/%v/%v",
			h.AutoscaleTarget, h.MatchTe, h.AutoscaleAction, h2.AutoscaleTarget, h2.MatchTe, h2.AutoscaleAction)
	}
}
