package transport

import (
	"fmt"
	"sync"
)

// inprocMsg is one in-flight message.
type inprocMsg struct {
	from    WorkerID
	payload []byte
}

// InprocNetwork connects workers through Go channels. It is the fastest
// transport and the reference implementation for the Transport contract.
type InprocNetwork struct {
	mu      sync.Mutex
	workers map[WorkerID]*inprocTransport
	depth   int
	closed  bool
}

// NewInprocNetwork creates an in-process network; depth is each worker's
// inbound queue depth (default 1024).
func NewInprocNetwork(depth int) *InprocNetwork {
	if depth <= 0 {
		depth = 1024
	}
	return &InprocNetwork{workers: map[WorkerID]*inprocTransport{}, depth: depth}
}

// Register implements Network.
func (n *InprocNetwork) Register(id WorkerID, h Handler) (Transport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if _, dup := n.workers[id]; dup {
		return nil, fmt.Errorf("transport: worker %d already registered", id)
	}
	t := &inprocTransport{
		net:  n,
		id:   id,
		in:   make(chan inprocMsg, n.depth),
		done: make(chan struct{}),
	}
	n.workers[id] = t
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			select {
			case m := <-t.in:
				t.stats.MsgsRecv.Add(1)
				t.stats.BytesRecv.Add(int64(len(m.payload)))
				h(m.from, m.payload)
			case <-t.done:
				// Drain what is already queued, then stop.
				for {
					select {
					case m := <-t.in:
						t.stats.MsgsRecv.Add(1)
						t.stats.BytesRecv.Add(int64(len(m.payload)))
						h(m.from, m.payload)
					default:
						return
					}
				}
			}
		}
	}()
	return t, nil
}

// Close implements Network.
func (n *InprocNetwork) Close() error {
	n.mu.Lock()
	ws := make([]*inprocTransport, 0, len(n.workers))
	for _, w := range n.workers {
		ws = append(ws, w)
	}
	n.closed = true
	n.mu.Unlock()
	var first error
	for _, w := range ws {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (n *InprocNetwork) lookup(id WorkerID) (*inprocTransport, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	w, ok := n.workers[id]
	return w, ok
}

type inprocTransport struct {
	net       *InprocNetwork
	id        WorkerID
	in        chan inprocMsg
	stats     Stats
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// Send implements Transport: it copies the payload and enqueues it on the
// destination worker's inbound channel, blocking when the queue is full.
func (t *inprocTransport) Send(to WorkerID, payload []byte) error {
	dst, ok := t.net.lookup(to)
	if !ok {
		return errUnknownWorker(to)
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	return timedSend(&t.stats, len(payload), func() error {
		// Check done first: with buffer space free AND done closed, a bare
		// two-case select would pick at random, sometimes enqueueing onto a
		// peer that already shut down.
		select {
		case <-dst.done:
			return fmt.Errorf("%w: worker %d", ErrPeerClosed, to)
		default:
		}
		select {
		case dst.in <- inprocMsg{from: t.id, payload: cp}:
			return nil
		case <-dst.done:
			return fmt.Errorf("%w: worker %d", ErrPeerClosed, to)
		}
	})
}

// Flush implements Transport (no batching in-process).
func (t *inprocTransport) Flush() error { return nil }

// Pressure implements Transport: occupancy of the destination worker's
// inbound queue as a percentage of its depth.
func (t *inprocTransport) Pressure(to WorkerID) int {
	dst, ok := t.net.lookup(to)
	if !ok {
		return 0
	}
	return len(dst.in) * 100 / cap(dst.in)
}

// Stats implements Transport.
func (t *inprocTransport) Stats() *Stats { return &t.stats }

// Close implements Transport.
func (t *inprocTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.wg.Wait()
	})
	return nil
}
