package transport

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"whale/internal/rdma"
)

// networks under test, constructed fresh per case.
func networks() map[string]func() Network {
	return map[string]func() Network{
		"inproc": func() Network { return NewInprocNetwork(0) },
		"tcp":    func() Network { return NewTCPNetwork() },
		"rdma-read": func() Network {
			return NewRDMANetwork(rdma.CostModel{}, rdma.ChannelConfig{MMS: 8 << 10, WTL: time.Millisecond})
		},
		"rdma-twosided": func() Network {
			return NewRDMANetwork(rdma.CostModel{}, rdma.ChannelConfig{Mode: rdma.ModeTwoSided, MMS: 8 << 10, WTL: time.Millisecond})
		},
		"rdma-write": func() Network {
			return NewRDMANetwork(rdma.CostModel{}, rdma.ChannelConfig{Mode: rdma.ModeOneSidedWrite, MMS: 8 << 10, WTL: time.Millisecond})
		},
	}
}

type collector struct {
	mu   sync.Mutex
	msgs map[WorkerID][]string // keyed by sender
}

func newCollector() *collector { return &collector{msgs: map[WorkerID][]string{}} }

func (c *collector) handler(from WorkerID, payload []byte) {
	c.mu.Lock()
	c.msgs[from] = append(c.msgs[from], string(payload))
	c.mu.Unlock()
}

func (c *collector) total() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.msgs {
		n += len(v)
	}
	return n
}

func (c *collector) from(id WorkerID) []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.msgs[id]...)
}

func waitTotal(t *testing.T, c *collector, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.total() >= want {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("timeout: have %d of %d messages", c.total(), want)
}

func TestRoundTripAllTransports(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()
			cA := newCollector()
			cB := newCollector()
			ta, err := net.Register(1, cA.handler)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := net.Register(2, cB.handler)
			if err != nil {
				t.Fatal(err)
			}
			const total = 200
			for i := 0; i < total; i++ {
				if err := ta.Send(2, []byte(fmt.Sprintf("a->b %03d", i))); err != nil {
					t.Fatal(err)
				}
				if err := tb.Send(1, []byte(fmt.Sprintf("b->a %03d", i))); err != nil {
					t.Fatal(err)
				}
			}
			ta.Flush()
			tb.Flush()
			waitTotal(t, cA, total)
			waitTotal(t, cB, total)
			// Ordering per link.
			for i, m := range cB.from(1) {
				if m != fmt.Sprintf("a->b %03d", i) {
					t.Fatalf("b's message %d = %q", i, m)
				}
			}
			for i, m := range cA.from(2) {
				if m != fmt.Sprintf("b->a %03d", i) {
					t.Fatalf("a's message %d = %q", i, m)
				}
			}
			// Stats.
			st := ta.Stats().Load()
			if st.MsgsSent != total || st.MsgsRecv != total {
				t.Fatalf("stats %+v", st)
			}
			if st.BytesSent == 0 || st.SendNS < 0 {
				t.Fatalf("stats %+v", st)
			}
		})
	}
}

func TestUnknownWorker(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()
			ta, err := net.Register(1, func(WorkerID, []byte) {})
			if err != nil {
				t.Fatal(err)
			}
			if err := ta.Send(99, []byte("x")); err == nil {
				t.Fatal("send to unknown worker accepted")
			}
		})
	}
}

func TestDuplicateRegistration(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()
			if _, err := net.Register(1, func(WorkerID, []byte) {}); err != nil {
				t.Fatal(err)
			}
			if _, err := net.Register(1, func(WorkerID, []byte) {}); err == nil {
				t.Fatal("duplicate registration accepted")
			}
		})
	}
}

func TestManyToOneFanIn(t *testing.T) {
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()
			sink := newCollector()
			if _, err := net.Register(0, sink.handler); err != nil {
				t.Fatal(err)
			}
			const senders, each = 5, 50
			var wg sync.WaitGroup
			for s := 1; s <= senders; s++ {
				tr, err := net.Register(WorkerID(s), func(WorkerID, []byte) {})
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(s int, tr Transport) {
					defer wg.Done()
					for i := 0; i < each; i++ {
						if err := tr.Send(0, []byte(fmt.Sprintf("%d:%d", s, i))); err != nil {
							t.Errorf("sender %d: %v", s, err)
							return
						}
					}
					tr.Flush()
				}(s, tr)
			}
			wg.Wait()
			waitTotal(t, sink, senders*each)
			for s := 1; s <= senders; s++ {
				msgs := sink.from(WorkerID(s))
				if len(msgs) != each {
					t.Fatalf("sender %d delivered %d", s, len(msgs))
				}
				for i, m := range msgs {
					if m != fmt.Sprintf("%d:%d", s, i) {
						t.Fatalf("sender %d message %d = %q", s, i, m)
					}
				}
			}
		})
	}
}

func TestPayloadCopiedBeforeReturn(t *testing.T) {
	// Mutating the buffer after Send must not corrupt the delivered message.
	for name, mk := range networks() {
		t.Run(name, func(t *testing.T) {
			net := mk()
			defer net.Close()
			sink := newCollector()
			net.Register(0, sink.handler)
			tr, _ := net.Register(1, func(WorkerID, []byte) {})
			buf := []byte("original")
			if err := tr.Send(0, buf); err != nil {
				t.Fatal(err)
			}
			copy(buf, "CLOBBER!")
			tr.Flush()
			waitTotal(t, sink, 1)
			if got := sink.from(1)[0]; got != "original" {
				t.Fatalf("payload aliased: %q", got)
			}
		})
	}
}

func TestRDMAChannelStatsAggregation(t *testing.T) {
	net := NewRDMANetwork(rdma.CostModel{}, rdma.ChannelConfig{MMS: 1 << 10, WTL: time.Millisecond})
	defer net.Close()
	sink := newCollector()
	net.Register(0, sink.handler)
	tr, _ := net.Register(1, func(WorkerID, []byte) {})
	rt := tr.(*rdmaTransport)
	for i := 0; i < 100; i++ {
		tr.Send(0, make([]byte, 128))
	}
	tr.Flush()
	waitTotal(t, sink, 100)
	cs := rt.ChannelStats()
	if cs.MsgsSent != 100 || cs.WorkRequests == 0 {
		t.Fatalf("channel stats %+v", cs)
	}
	if cs.WorkRequests >= 100 {
		t.Fatalf("no batching: %d WRs", cs.WorkRequests)
	}
}

func TestSendErrsCounted(t *testing.T) {
	net := NewInprocNetwork(0)
	defer net.Close()
	a, err := net.Register(0, func(WorkerID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Register(1, func(WorkerID, []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, []byte("lost")); !errors.Is(err, ErrPeerClosed) {
		t.Fatalf("send to closed peer = %v, want ErrPeerClosed", err)
	}
	st := a.Stats().Load()
	if st.SendErrs != 1 {
		t.Fatalf("SendErrs=%d, want 1", st.SendErrs)
	}
	// Failed sends never count as sent traffic.
	if st.MsgsSent != 1 || st.BytesSent != 2 {
		t.Fatalf("sent %d msgs / %d bytes, want 1/2", st.MsgsSent, st.BytesSent)
	}
}

func TestIsTransientClassification(t *testing.T) {
	transient := []error{
		ErrUnreachable,
		fmt.Errorf("wrapped: %w", ErrUnreachable),
		fmt.Errorf("rdma: QP 7 %w", rdma.ErrSQFull),
		fmt.Errorf("rdma: QP 7 %w", rdma.ErrRQFull),
	}
	for _, err := range transient {
		if !IsTransient(err) {
			t.Fatalf("%v not classified transient", err)
		}
	}
	permanent := []error{
		nil,
		ErrPeerClosed,
		fmt.Errorf("wrapped: %w", ErrPeerClosed),
		errUnknownWorker(9),
		fmt.Errorf("rdma: QP 7 %w", rdma.ErrQPClosed),
		fmt.Errorf("rdma: QP 7 %w", rdma.ErrNotConnected),
	}
	for _, err := range permanent {
		if IsTransient(err) {
			t.Fatalf("%v classified transient", err)
		}
	}
}
