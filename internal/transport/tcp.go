package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// TCPNetwork connects workers over real loopback TCP sockets, paying the
// real kernel network-stack cost per message — the cost the paper's Fig. 2d
// shows dominating the upstream instance's CPU in stock Storm.
type TCPNetwork struct {
	mu      sync.Mutex
	addrs   map[WorkerID]string
	workers map[WorkerID]*tcpTransport
	closed  bool
}

// NewTCPNetwork creates an empty TCP network on loopback.
func NewTCPNetwork() *TCPNetwork {
	return &TCPNetwork{addrs: map[WorkerID]string{}, workers: map[WorkerID]*tcpTransport{}}
}

// Register implements Network: it starts a listener for the worker and a
// reader goroutine per inbound connection.
func (n *TCPNetwork) Register(id WorkerID, h Handler) (Transport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if _, dup := n.workers[id]; dup {
		return nil, fmt.Errorf("transport: worker %d already registered", id)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	t := &tcpTransport{
		net:     n,
		id:      id,
		ln:      ln,
		handler: h,
		conns:   map[WorkerID]*tcpConn{},
		done:    make(chan struct{}),
	}
	n.addrs[id] = ln.Addr().String()
	n.workers[id] = t
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Close implements Network.
func (n *TCPNetwork) Close() error {
	n.mu.Lock()
	ws := make([]*tcpTransport, 0, len(n.workers))
	for _, w := range n.workers {
		ws = append(ws, w)
	}
	n.closed = true
	n.mu.Unlock()
	var first error
	for _, w := range ws {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (n *TCPNetwork) addrOf(id WorkerID) (string, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	a, ok := n.addrs[id]
	return a, ok
}

// tcpConn is one outbound connection with a buffered writer.
type tcpConn struct {
	mu sync.Mutex
	c  net.Conn
	w  *bufio.Writer
}

type tcpTransport struct {
	net     *TCPNetwork
	id      WorkerID
	ln      net.Listener
	handler Handler

	mu      sync.Mutex
	conns   map[WorkerID]*tcpConn
	inbound []net.Conn

	stats     Stats
	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// frame: u32 sender id | u32 len | payload.
func (t *tcpTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.inbound = append(t.inbound, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(c)
	}
}

func (t *tcpTransport) readLoop(c net.Conn) {
	defer t.wg.Done()
	defer c.Close()
	r := bufio.NewReaderSize(c, 64<<10)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return
		}
		from := WorkerID(binary.LittleEndian.Uint32(hdr[0:]))
		n := binary.LittleEndian.Uint32(hdr[4:])
		payload := make([]byte, n)
		if _, err := io.ReadFull(r, payload); err != nil {
			return
		}
		t.stats.MsgsRecv.Add(1)
		t.stats.BytesRecv.Add(int64(n))
		t.handler(from, payload)
	}
}

// Send implements Transport: it lazily dials the destination and writes one
// length-prefixed frame. The bufio writer is flushed per message — each
// message really traverses the kernel, as in stock Storm's per-tuple sends.
func (t *tcpTransport) Send(to WorkerID, payload []byte) error {
	conn, err := t.connTo(to)
	if err != nil {
		return err
	}
	return timedSend(&t.stats, len(payload), func() error {
		var hdr [8]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(t.id))
		binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
		conn.mu.Lock()
		defer conn.mu.Unlock()
		if _, err := conn.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := conn.w.Write(payload); err != nil {
			return err
		}
		return conn.w.Flush()
	})
}

func (t *tcpTransport) connTo(to WorkerID) (*tcpConn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c, ok := t.conns[to]; ok {
		return c, nil
	}
	addr, ok := t.net.addrOf(to)
	if !ok {
		return nil, errUnknownWorker(to)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	tc := &tcpConn{c: c, w: bufio.NewWriterSize(c, 64<<10)}
	t.conns[to] = tc
	return tc, nil
}

// Flush implements Transport (frames are flushed per send already).
func (t *tcpTransport) Flush() error { return nil }

// Pressure implements Transport. TCP buffering lives in the kernel socket
// buffers, which this transport cannot observe, so it reports no pressure.
func (t *tcpTransport) Pressure(WorkerID) int { return 0 }

// Stats implements Transport.
func (t *tcpTransport) Stats() *Stats { return &t.stats }

// Close implements Transport.
func (t *tcpTransport) Close() error {
	t.closeOnce.Do(func() {
		close(t.done)
		t.ln.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			c.c.Close()
		}
		for _, c := range t.inbound {
			c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
	})
	return nil
}
