// Package transport provides the worker-to-worker byte transport beneath
// the stream processing engine, with three interchangeable implementations:
//
//   - in-process channels (fast, for unit tests and examples),
//   - real TCP over loopback (the kernel network stack the paper's Storm
//     baseline pays for),
//   - the emulated RDMA verbs channel of internal/rdma (kernel-bypass, ring
//     memory region, MMS/WTL batching — the Whale data path).
//
// A Network wires up one Transport per worker; a Transport sends opaque
// payloads to peer workers and delivers inbound payloads to the handler
// registered at creation. Per-link ordering is guaranteed by every
// implementation; cross-link ordering is not.
package transport

import (
	"fmt"
	"sync/atomic"
	"time"
)

// WorkerID identifies a worker process on the network.
type WorkerID = int32

// Handler consumes one inbound payload. Implementations invoke it from the
// transport's receive goroutine; handlers must not block indefinitely.
type Handler func(from WorkerID, payload []byte)

// Stats counts a transport's traffic. All fields are atomic.
type Stats struct {
	MsgsSent  atomic.Int64
	BytesSent atomic.Int64
	MsgsRecv  atomic.Int64
	BytesRecv atomic.Int64
	// SendNS accumulates wall time spent inside Send — the sender-side CPU
	// cost the paper's Fig. 25 "communication time" measures.
	SendNS atomic.Int64
}

// Snapshot is a point-in-time copy of Stats.
type Snapshot struct {
	MsgsSent, BytesSent, MsgsRecv, BytesRecv, SendNS int64
}

// Load snapshots the counters.
func (s *Stats) Load() Snapshot {
	return Snapshot{
		MsgsSent:  s.MsgsSent.Load(),
		BytesSent: s.BytesSent.Load(),
		MsgsRecv:  s.MsgsRecv.Load(),
		BytesRecv: s.BytesRecv.Load(),
		SendNS:    s.SendNS.Load(),
	}
}

// Transport is one worker's connection to the network.
type Transport interface {
	// Send delivers payload to the worker with id to. Safe for concurrent
	// use. The payload is copied before Send returns.
	Send(to WorkerID, payload []byte) error
	// Flush pushes out any batched data (a no-op for unbatched transports).
	Flush() error
	// Stats exposes the transport's counters.
	Stats() *Stats
	// Close releases the transport's resources.
	Close() error
}

// Network creates and connects Transports.
type Network interface {
	// Register attaches worker id with the given inbound handler and
	// returns its transport. Every worker must be registered before any
	// Send targets it.
	Register(id WorkerID, h Handler) (Transport, error)
	// Close shuts down all registered transports.
	Close() error
}

// timedSend wraps the body of a Send with stats accounting.
func timedSend(st *Stats, bytes int, fn func() error) error {
	t0 := time.Now()
	err := fn()
	st.SendNS.Add(time.Since(t0).Nanoseconds())
	if err == nil {
		st.MsgsSent.Add(1)
		st.BytesSent.Add(int64(bytes))
	}
	return err
}

// ErrUnknownWorker is returned for sends to unregistered ids.
func errUnknownWorker(id WorkerID) error {
	return fmt.Errorf("transport: unknown worker %d", id)
}
