// Package transport provides the worker-to-worker byte transport beneath
// the stream processing engine, with three interchangeable implementations:
//
//   - in-process channels (fast, for unit tests and examples),
//   - real TCP over loopback (the kernel network stack the paper's Storm
//     baseline pays for),
//   - the emulated RDMA verbs channel of internal/rdma (kernel-bypass, ring
//     memory region, MMS/WTL batching — the Whale data path).
//
// A Network wires up one Transport per worker; a Transport sends opaque
// payloads to peer workers and delivers inbound payloads to the handler
// registered at creation. Per-link ordering is guaranteed by every
// implementation; cross-link ordering is not.
package transport

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"whale/internal/rdma"
)

// WorkerID identifies a worker process on the network.
type WorkerID = int32

// Handler consumes one inbound payload. Implementations invoke it from the
// transport's receive goroutine; handlers must not block indefinitely.
// Ownership of the payload slice transfers to the handler: every transport
// delivers a private copy (Send copies before enqueueing, the stream
// transports allocate per received frame), so the handler may retain or
// alias it beyond the call.
type Handler func(from WorkerID, payload []byte)

// Stats counts a transport's traffic. All fields are atomic.
type Stats struct {
	MsgsSent  atomic.Int64
	BytesSent atomic.Int64
	MsgsRecv  atomic.Int64
	BytesRecv atomic.Int64
	// SendNS accumulates wall time spent inside Send — the sender-side CPU
	// cost the paper's Fig. 25 "communication time" measures.
	SendNS atomic.Int64
	// SendErrs counts Send calls that returned an error (the message was
	// not handed to the wire). Failed sends contribute to SendNS but not
	// to MsgsSent/BytesSent.
	SendErrs atomic.Int64
}

// Snapshot is a point-in-time copy of Stats.
type Snapshot struct {
	MsgsSent, BytesSent, MsgsRecv, BytesRecv, SendNS, SendErrs int64
}

// Load snapshots the counters.
func (s *Stats) Load() Snapshot {
	return Snapshot{
		MsgsSent:  s.MsgsSent.Load(),
		BytesSent: s.BytesSent.Load(),
		MsgsRecv:  s.MsgsRecv.Load(),
		BytesRecv: s.BytesRecv.Load(),
		SendNS:    s.SendNS.Load(),
		SendErrs:  s.SendErrs.Load(),
	}
}

// Transport is one worker's connection to the network.
type Transport interface {
	// Send delivers payload to the worker with id to. Safe for concurrent
	// use. The payload is copied before Send returns.
	Send(to WorkerID, payload []byte) error
	// Flush pushes out any batched data (a no-op for unbatched transports).
	Flush() error
	// Pressure reports the congestion toward worker to as a percentage of
	// the link's buffering capacity in [0, 100]: 0 means idle, 100 means the
	// outbound path (peer inbound queue, RDMA ring, ...) is full. Transports
	// without visible buffering return 0.
	Pressure(to WorkerID) int
	// Stats exposes the transport's counters.
	Stats() *Stats
	// Close releases the transport's resources.
	Close() error
}

// Network creates and connects Transports.
type Network interface {
	// Register attaches worker id with the given inbound handler and
	// returns its transport. Every worker must be registered before any
	// Send targets it.
	Register(id WorkerID, h Handler) (Transport, error)
	// Close shuts down all registered transports.
	Close() error
}

// timedSend wraps the body of a Send with stats accounting.
func timedSend(st *Stats, bytes int, fn func() error) error {
	t0 := time.Now()
	err := fn()
	st.SendNS.Add(time.Since(t0).Nanoseconds())
	if err == nil {
		st.MsgsSent.Add(1)
		st.BytesSent.Add(int64(bytes))
	} else {
		st.SendErrs.Add(1)
	}
	return err
}

// Typed send-failure sentinels, wrapped by the implementations so retry
// logic can classify failures with errors.Is.
var (
	// ErrUnreachable marks a destination that cannot currently be reached
	// (dropped link, partition, crashed-but-unconfirmed peer). Transient
	// from the sender's point of view: a bounded retry may succeed.
	ErrUnreachable = errors.New("transport: unreachable")
	// ErrPeerClosed marks a destination that has shut down its transport.
	// Fatal: retrying cannot succeed until the peer re-registers.
	ErrPeerClosed = errors.New("transport: peer closed")
)

// IsTransient reports whether a Send error is worth a bounded retry —
// either explicit unreachability (fault injection, partitions) or
// backpressure from a full RDMA send queue. Unknown errors are treated as
// permanent so misconfigurations fail fast.
func IsTransient(err error) bool {
	return errors.Is(err, ErrUnreachable) || errors.Is(err, rdma.ErrSQFull) || errors.Is(err, rdma.ErrRQFull)
}

// ErrUnknownWorker is returned for sends to unregistered ids.
func errUnknownWorker(id WorkerID) error {
	return fmt.Errorf("transport: unknown worker %d", id)
}
