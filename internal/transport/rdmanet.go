package transport

import (
	"fmt"
	"sync"

	"whale/internal/rdma"
)

// RDMANetwork connects workers through the emulated RDMA verbs channels of
// internal/rdma: kernel-bypass, ring memory regions, and MMS/WTL batching —
// Whale's data path. Each worker owns one endpoint (device); channels are
// dialed lazily per destination.
type RDMANetwork struct {
	fabric *rdma.Fabric
	cfg    rdma.ChannelConfig

	mu      sync.Mutex
	workers map[WorkerID]*rdmaTransport
	closed  bool
}

// NewRDMANetwork creates a network on a fresh fabric. cost configures the
// emulated RNIC timing; cfg the channel mode and batching knobs.
func NewRDMANetwork(cost rdma.CostModel, cfg rdma.ChannelConfig) *RDMANetwork {
	return &RDMANetwork{
		fabric:  rdma.NewFabric(cost),
		cfg:     cfg,
		workers: map[WorkerID]*rdmaTransport{},
	}
}

// Register implements Network.
func (n *RDMANetwork) Register(id WorkerID, h Handler) (Transport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("transport: network closed")
	}
	if _, dup := n.workers[id]; dup {
		return nil, fmt.Errorf("transport: worker %d already registered", id)
	}
	ep, err := rdma.NewEndpoint(n.fabric, workerDevName(id), n.cfg)
	if err != nil {
		return nil, err
	}
	t := &rdmaTransport{net: n, id: id, ep: ep, handler: h, chans: map[WorkerID]*rdma.Channel{}}
	ep.OnAccept(func(remote string, ch *rdma.Channel) {
		from, perr := parseWorkerDevName(remote)
		if perr != nil {
			return
		}
		ch.SetHandler(func(msg []byte) {
			t.stats.MsgsRecv.Add(1)
			t.stats.BytesRecv.Add(int64(len(msg)))
			t.handler(from, msg)
		})
	})
	n.workers[id] = t
	return t, nil
}

// Close implements Network.
func (n *RDMANetwork) Close() error {
	n.mu.Lock()
	ws := make([]*rdmaTransport, 0, len(n.workers))
	for _, w := range n.workers {
		ws = append(ws, w)
	}
	n.closed = true
	n.mu.Unlock()
	var first error
	for _, w := range ws {
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func workerDevName(id WorkerID) string { return fmt.Sprintf("worker-%d", id) }

func parseWorkerDevName(name string) (WorkerID, error) {
	var id WorkerID
	if _, err := fmt.Sscanf(name, "worker-%d", &id); err != nil {
		return 0, fmt.Errorf("transport: bad device name %q", name)
	}
	return id, nil
}

type rdmaTransport struct {
	net     *RDMANetwork
	id      WorkerID
	ep      *rdma.Endpoint
	handler Handler

	mu    sync.Mutex
	chans map[WorkerID]*rdma.Channel

	stats     Stats
	closeOnce sync.Once
}

// Send implements Transport. The message lands in the channel's pending
// batch; the channel flushes on MMS or WTL.
func (t *rdmaTransport) Send(to WorkerID, payload []byte) error {
	ch, err := t.chanTo(to)
	if err != nil {
		return err
	}
	return timedSend(&t.stats, len(payload), func() error {
		return ch.Send(payload)
	})
}

func (t *rdmaTransport) chanTo(to WorkerID) (*rdma.Channel, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ch, ok := t.chans[to]; ok {
		return ch, nil
	}
	t.net.mu.Lock()
	_, known := t.net.workers[to]
	t.net.mu.Unlock()
	if !known {
		return nil, errUnknownWorker(to)
	}
	ch, err := t.ep.Dial(workerDevName(to))
	if err != nil {
		return nil, err
	}
	t.chans[to] = ch
	return ch, nil
}

// Flush implements Transport: it forces all per-destination batches out.
func (t *rdmaTransport) Flush() error {
	t.mu.Lock()
	chans := make([]*rdma.Channel, 0, len(t.chans))
	for _, ch := range t.chans {
		chans = append(chans, ch)
	}
	t.mu.Unlock()
	for _, ch := range chans {
		if err := ch.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements Transport.
func (t *rdmaTransport) Stats() *Stats { return &t.stats }

// Pressure implements Transport: occupancy of the destination channel's ring
// region (pending batch + published-but-unconsumed bytes) as a percentage of
// its size. A destination that was never dialed has no ring and no pressure.
func (t *rdmaTransport) Pressure(to WorkerID) int {
	t.mu.Lock()
	ch, ok := t.chans[to]
	t.mu.Unlock()
	if !ok {
		return 0
	}
	return ch.PressurePct()
}

// ChannelStats aggregates the underlying rdma channel counters (for the
// MMS/WTL microbenchmarks).
func (t *rdmaTransport) ChannelStats() rdma.StatsSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	var agg rdma.StatsSnapshot
	for _, ch := range t.chans {
		s := ch.Stats()
		agg.MsgsSent += s.MsgsSent
		agg.BytesSent += s.BytesSent
		agg.WorkRequests += s.WorkRequests
		agg.SizeFlushes += s.SizeFlushes
		agg.TimerFlushes += s.TimerFlushes
		agg.BlockedNS += s.BlockedNS
	}
	return agg
}

// RingOccupancy sums the bytes currently occupying this worker's outbound
// ring regions (published-but-unconsumed plus pending batches) across all
// dialed channels. The engine's observability layer polls it as the
// per-worker "rdma.ring_occupancy" gauge.
func (t *rdmaTransport) RingOccupancy() int {
	t.mu.Lock()
	chans := make([]*rdma.Channel, 0, len(t.chans))
	for _, ch := range t.chans {
		chans = append(chans, ch)
	}
	t.mu.Unlock()
	occ := 0
	for _, ch := range chans {
		occ += ch.RingOccupancy()
	}
	return occ
}

// Close implements Transport.
func (t *rdmaTransport) Close() error {
	var err error
	t.closeOnce.Do(func() {
		err = t.ep.Close()
	})
	return err
}
