package chaos_test

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/dsps"
	"whale/internal/obs"
	"whale/internal/transport"
)

// The overload soak (`make chaos`): one slow subscriber under sustained
// all-grouping multicast load. It asserts the backpressure story end to end:
//
//   - the slow subscriber's link pauses and the worker is reported degraded
//     through the failure detector (advisory, never fenced),
//   - siblings on healthy links keep full throughput — the slow peer is
//     isolated behind its own link queue,
//   - best-effort overflow is shed and counted, never silently lost,
//   - memory stays bounded: link queues never exceed their configured cap,
//   - once the consumer speeds up the link reopens, the degraded mark
//     clears, and delivery to the recovered subscriber resumes,
//   - acked flows under the same pressure lose nothing and shed nothing,
//   - two identical runs produce the same overload event sequence.

// pacedSpout emits ids 0..n-1 best-effort at a fixed interval, so healthy
// links see a rate they can absorb while the slowed link falls behind.
type pacedSpout struct {
	n        int
	interval time.Duration
	i        int64
}

func (s *pacedSpout) Open(*dsps.TaskContext) {}
func (s *pacedSpout) Next(c *dsps.Collector) bool {
	if s.i >= int64(s.n) {
		return false
	}
	c.Emit(s.i)
	s.i++
	time.Sleep(s.interval)
	return true
}
func (s *pacedSpout) Close() {}

// overloadOutcome is what a shed-policy overload run must reproduce across
// two identical invocations.
type overloadOutcome struct {
	Events   []string // overload event sequence for the slow peer, in order
	Siblings []int32  // healthy fan tasks that met the throughput floor
	SlowOK   bool     // recovered subscriber saw the post-recovery tail
	ShedSome bool
}

const (
	overloadWorkers = 4
	overloadTuples  = 800
	slowWorker      = 3
)

// startOverload builds the 4-worker all-grouping topology: spout task 0 on
// worker 0, fan tasks 1..3 on workers 1..3, d*=2 tree 0 -> {1,2}, 1 -> {3}.
// The slow subscriber therefore sits behind interior relay worker 1.
func startOverload(t *testing.T, net transport.Network, spout dsps.Spout, rec *deliveryRecord, cfg dsps.Config) *dsps.Engine {
	t.Helper()
	b := dsps.NewTopologyBuilder()
	b.Spout("src", func() dsps.Spout { return spout }, 1)
	b.Bolt("fan", func() dsps.Bolt { return &fanBolt{rec: rec} }, overloadWorkers-1).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = overloadWorkers
	cfg.Network = net
	cfg.Comm = dsps.WorkerOriented
	cfg.Multicast = dsps.MulticastNonBlocking
	cfg.FixedDstar = true
	cfg.InitialDstar = 2
	eng, err := dsps.Start(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tid := range eng.TasksOf("fan") {
		if w := eng.WorkerOfTask(tid); w != tid%overloadWorkers {
			t.Fatalf("task %d on worker %d; overload soak assumes round-robin placement", tid, w)
		}
	}
	return eng
}

// waitOverloadEvent polls until an event satisfying pred is logged.
func waitOverloadEvent(t *testing.T, eng *dsps.Engine, what string, within time.Duration, pred func(obs.Event) bool) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		for _, ev := range eng.Obs().Events.Recent(0) {
			if pred(ev) {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s not observed within %v", what, within)
}

// has reports whether task saw id.
func (r *deliveryRecord) has(task int32, id int64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seen[task][id]
}

// runOverloadShed executes one best-effort overload run: worker 3 is slowed
// mid-stream, then restored while emission continues.
func runOverloadShed(t *testing.T) overloadOutcome {
	t.Helper()

	// Zero fault probabilities: the only disturbance is the slow consumer,
	// so the overload event sequence is reproducible run to run.
	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: 11})
	rec := newDeliveryRecord()
	eng := startOverload(t, net, &pacedSpout{n: overloadTuples, interval: time.Millisecond}, rec, dsps.Config{
		CreditWindow: 4, LinkQueueCap: 8,
		ShedPolicy: dsps.ShedNewest,
		PauseAfter: 100 * time.Millisecond, DegradedAfter: 150 * time.Millisecond,
		CreditTimeout:     5 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond, SuspectAfter: 30 * time.Second,
	})
	stopped := false
	defer func() {
		if !stopped {
			eng.Stop()
		}
	}()

	// Let the control plane settle (tree installed everywhere) before the
	// subscriber degrades; early tuples flow at full speed.
	time.Sleep(100 * time.Millisecond)
	net.SetSlow(slowWorker, 250*time.Millisecond)

	waitOverloadEvent(t, eng, "link-paused for slow peer", 10*time.Second, func(ev obs.Event) bool {
		return ev.Kind == obs.EventLinkPaused && ev.Peer == slowWorker
	})
	waitOverloadEvent(t, eng, "worker-degraded for slow peer", 10*time.Second, func(ev obs.Event) bool {
		return ev.Kind == obs.EventWorkerDegraded && ev.Worker == slowWorker
	})
	if got := eng.DegradedWorkers(); !reflect.DeepEqual(got, []int32{slowWorker}) {
		t.Fatalf("DegradedWorkers during overload = %v, want [%d]", got, slowWorker)
	}
	if len(eng.DeadWorkers()) != 0 {
		t.Fatalf("overload must never fence: dead = %v", eng.DeadWorkers())
	}

	// Bounded memory: no link holds more than its queue cap plus the one
	// popped item in flight, even at peak overload.
	for _, ls := range eng.LinkStats() {
		if ls.Queued > 8+1 {
			t.Fatalf("link %d->%d queued %d items, cap 8", ls.From, ls.To, ls.Queued)
		}
	}

	// Consumer speeds back up while the spout is still emitting: the link
	// must drain, reopen, and clear the degraded mark.
	net.SetSlow(slowWorker, 0)
	waitOverloadEvent(t, eng, "link-open after recovery", 10*time.Second, func(ev obs.Event) bool {
		return ev.Kind == obs.EventLinkOpen && ev.Peer == slowWorker
	})

	eng.WaitSpouts()
	if !eng.Drain(10 * time.Second) {
		t.Fatal("overload run did not drain")
	}
	if got := eng.DegradedWorkers(); len(got) != 0 {
		t.Fatalf("degraded mark not cleared after recovery: %v", got)
	}

	out := overloadOutcome{ShedSome: eng.Metrics().TuplesShed.Value() > 0}
	// Sibling isolation: the healthy subscribers' throughput stays within
	// 10% of the lossless baseline despite the paused sibling link.
	for _, tid := range []int32{1, 2} {
		if miss := len(rec.missing(tid, overloadTuples)); miss <= overloadTuples/10 {
			out.Siblings = append(out.Siblings, tid)
		} else {
			t.Fatalf("healthy task %d missing %d of %d tuples", tid, miss, overloadTuples)
		}
	}
	// Recovery: the tail of the stream — emitted well after the consumer
	// sped up — reaches the once-slow subscriber in full.
	out.SlowOK = true
	for id := int64(overloadTuples - 50); id < overloadTuples; id++ {
		if !rec.has(slowWorker, id) {
			t.Fatalf("recovered task %d never saw post-recovery id %d", slowWorker, id)
		}
	}
	// The slow peer's overload lifecycle, in order. Filtering to the slow
	// peer keeps the trace free of incidental startup noise.
	for _, ev := range eng.Obs().Events.Recent(0) {
		switch ev.Kind {
		case obs.EventLinkPaused, obs.EventLinkOpen:
			if ev.Peer == slowWorker {
				out.Events = append(out.Events, fmt.Sprintf("%s/p%d", ev.Kind, ev.Peer))
			}
		case obs.EventWorkerDegraded:
			if ev.Worker == slowWorker {
				out.Events = append(out.Events, fmt.Sprintf("%s/w%d", ev.Kind, ev.Worker))
			}
		}
	}
	stopped = true
	eng.Stop()
	return out
}

// runOverloadAcked executes one acked overload run: the same slow subscriber
// under a shedding policy, where tracked tuples must block instead of shed.
func runOverloadAcked(t *testing.T) (acked int, shed int64, missing map[int32]int) {
	t.Helper()

	const total = 40
	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: 11})
	rec := newDeliveryRecord()
	spout := &replaySpout{total: total}
	eng := startOverload(t, net, spout, rec, dsps.Config{
		CreditWindow: 4, LinkQueueCap: 8,
		ShedPolicy: dsps.ShedNewest, // acked flows must override this
		PauseAfter: 250 * time.Millisecond,
		AckEnabled: true, Ackers: 1, AckTimeout: 10 * time.Second,
		MaxSpoutPending:   16,
		HeartbeatInterval: 50 * time.Millisecond, SuspectAfter: 30 * time.Second,
	})
	defer eng.Stop()

	net.SetSlow(slowWorker, 40*time.Millisecond)
	eng.WaitSpouts()
	if !eng.Drain(20 * time.Second) {
		t.Fatal("acked overload run did not drain")
	}
	net.SetSlow(slowWorker, 0)

	missing = map[int32]int{}
	for _, tid := range eng.TasksOf("fan") {
		missing[tid] = len(rec.missing(tid, total))
	}
	// Any pause must have been for the slow peer; nothing else was faulted.
	for _, ev := range eng.Obs().Events.Recent(0) {
		if ev.Kind == obs.EventLinkPaused && ev.Peer != slowWorker {
			t.Fatalf("unexpected pause for healthy peer %d", ev.Peer)
		}
	}
	return spout.ackedCount(), eng.Metrics().TuplesShed.Value(), missing
}

func TestOverloadSoak(t *testing.T) {
	// --- Scenario 1: best-effort + ShedNewest, run twice. ---
	run1 := runOverloadShed(t)

	want := []string{
		obs.EventLinkPaused + fmt.Sprintf("/p%d", slowWorker),
		obs.EventWorkerDegraded + fmt.Sprintf("/w%d", slowWorker),
		obs.EventLinkOpen + fmt.Sprintf("/p%d", slowWorker),
	}
	if !reflect.DeepEqual(run1.Events, want) {
		t.Fatalf("overload event sequence:\n got %v\nwant %v", run1.Events, want)
	}
	if !run1.ShedSome {
		t.Fatal("slow consumer shed nothing: the soak exercised no overload")
	}

	run2 := runOverloadShed(t)
	if !reflect.DeepEqual(run1, run2) {
		t.Fatalf("identical overload runs, different outcomes:\nrun1 %+v\nrun2 %+v", run1, run2)
	}

	// --- Scenario 2: acked flow under the same pressure, run twice. ---
	const total = 40
	for run := 1; run <= 2; run++ {
		acked, shed, missing := runOverloadAcked(t)
		if acked != total {
			t.Fatalf("acked run %d: acked %d of %d", run, acked, total)
		}
		if shed != 0 {
			t.Fatalf("acked run %d: %d tracked tuples shed", run, shed)
		}
		for tid, n := range missing {
			if n != 0 {
				t.Fatalf("acked run %d: task %d missing %d ids", run, tid, n)
			}
		}
	}
}
