package chaos_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/dsps"
	"whale/internal/obs"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// The chaos soak (`make chaos`): all-grouping multicast traffic driven
// through drop/delay/duplication noise, a transient partition of a leaf
// worker, and a permanent crash of an interior relay node. It asserts the
// full robustness story end to end:
//
//   - the acking timeout → Fail → spout-replay loop delivers every tuple
//     at least once to every surviving fan task despite injected loss,
//   - the partition produces a suspect → recover pair (no false kill),
//   - the crash produces suspect → dead, the tree coordinator re-parents
//     the orphaned subtree (new CtrlTree version, survivors ack it), and
//     the rebuilt tree excludes the dead worker,
//   - the whole run is deterministic: two invocations with the same seed
//     produce the same fault-handling event sequence and final tree.

// replaySpout emits ids 0..total-1 reliably and re-queues failed ids until
// every id has been acked (at-least-once via timeout replay).
type replaySpout struct {
	total    int
	deadline time.Time

	next   int64
	replay []int64 // failed ids awaiting re-emission

	mu    sync.Mutex
	acked map[int64]bool
}

func (s *replaySpout) Open(*dsps.TaskContext) {
	s.acked = map[int64]bool{}
	s.deadline = time.Now().Add(60 * time.Second)
}

func (s *replaySpout) Next(c *dsps.Collector) bool {
	if time.Now().After(s.deadline) {
		return false // give the test a bounded failure instead of a hang
	}
	s.mu.Lock()
	done := len(s.acked) >= s.total
	s.mu.Unlock()
	if done {
		return false
	}
	if len(s.replay) > 0 {
		id := s.replay[0]
		s.replay = s.replay[1:]
		c.EmitReliable(id, id)
		return true
	}
	if s.next < int64(s.total) {
		id := s.next
		s.next++
		c.EmitReliable(id, id)
		return true
	}
	time.Sleep(time.Millisecond) // all in flight: idle until acks settle
	return true
}

func (s *replaySpout) Close() {}

func (s *replaySpout) Ack(msgID int64) {
	s.mu.Lock()
	s.acked[msgID] = true
	s.mu.Unlock()
}

func (s *replaySpout) Fail(msgID int64) {
	s.mu.Lock()
	done := s.acked[msgID]
	s.mu.Unlock()
	if !done {
		s.replay = append(s.replay, msgID)
	}
}

func (s *replaySpout) ackedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.acked)
}

// fanBolt records which ids reached this task.
type fanBolt struct {
	rec  *deliveryRecord
	task int32
}

// deliveryRecord is the shared per-run delivery matrix.
type deliveryRecord struct {
	mu   sync.Mutex
	seen map[int32]map[int64]bool // task -> set of ids
}

func newDeliveryRecord() *deliveryRecord {
	return &deliveryRecord{seen: map[int32]map[int64]bool{}}
}

func (r *deliveryRecord) mark(task int32, id int64) {
	r.mu.Lock()
	m := r.seen[task]
	if m == nil {
		m = map[int64]bool{}
		r.seen[task] = m
	}
	m[id] = true
	r.mu.Unlock()
}

func (r *deliveryRecord) missing(task int32, total int) []int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int64
	for id := int64(0); id < int64(total); id++ {
		if !r.seen[task][id] {
			out = append(out, id)
		}
	}
	return out
}

func (b *fanBolt) Prepare(ctx *dsps.TaskContext) { b.task = ctx.TaskID }
func (b *fanBolt) Execute(tp *tuple.Tuple, _ *dsps.Collector) {
	b.rec.mark(b.task, tp.Int(0))
}
func (b *fanBolt) Cleanup() {}

// soakOutcome is everything a soak run must reproduce bit-for-bit under
// the same seed.
type soakOutcome struct {
	Events   []string // fault-handling event sequence (kind/worker/version)
	Nodes    []int32  // final active tree, flattened
	Parents  []int32
	Version  int32
	Dead     []int32
	Acked    int
	Missing  map[int32]int // live fan task -> undelivered id count
	Replayed bool          // at least one timeout-driven replay happened
}

const (
	soakTuples  = 40
	soakWorkers = 5
)

// runSoak executes one full chaos soak with the given seed.
func runSoak(t *testing.T, seed int64) soakOutcome {
	t.Helper()

	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{
		Seed: seed, Drop: 0.02, Dup: 0.05, Delay: 0.2,
		DelayMin: 100 * time.Microsecond, DelayMax: 2 * time.Millisecond,
	})

	spout := &replaySpout{total: soakTuples}
	rec := newDeliveryRecord()
	b := dsps.NewTopologyBuilder()
	b.Spout("src", func() dsps.Spout { return spout }, 1)
	b.Bolt("fan", func() dsps.Bolt { return &fanBolt{rec: rec} }, soakWorkers-1).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	eng, err := dsps.Start(topo, dsps.Config{
		Workers: soakWorkers, Network: net,
		Comm: dsps.WorkerOriented, Multicast: dsps.MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		AckEnabled: true, Ackers: 1, AckTimeout: 300 * time.Millisecond,
		MaxSpoutPending:   8,
		HeartbeatInterval: 15 * time.Millisecond,
		SuspectAfter:      120 * time.Millisecond,
		ConfirmAfter:      400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			eng.Stop()
		}
	}()

	// The chaos schedule below partitions worker 3 and crashes worker 1;
	// pin the layout those ids assume (round-robin task placement).
	fan := eng.TasksOf("fan")
	if len(fan) != soakWorkers-1 {
		t.Fatalf("fan tasks = %v", fan)
	}
	for _, tid := range fan {
		if w := eng.WorkerOfTask(tid); w != tid%soakWorkers {
			t.Fatalf("task %d on worker %d; soak assumes round-robin placement", tid, w)
		}
	}

	waitEvent := func(kind string, worker int32, within time.Duration) {
		t.Helper()
		deadline := time.Now().Add(within)
		for time.Now().Before(deadline) {
			for _, ev := range eng.Obs().Events.Recent(0) {
				if ev.Kind == kind && ev.Worker == worker {
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("event %s(worker %d) not observed within %v", kind, worker, within)
	}

	// Phase A — noisy but connected: drops force timeout-driven replays,
	// delays reorder, duplicates exercise re-delivery.
	time.Sleep(200 * time.Millisecond)

	// Phase B — transient partition of leaf worker 3 from the monitor
	// (worker 0, which also hosts the acker): its heartbeats and acks go
	// dark, it must be suspected but NOT confirmed, then recover on heal.
	net.Partition(0, 3)
	time.Sleep(250 * time.Millisecond)
	net.Heal(0, 3)
	waitEvent(obs.EventWorkerSuspect, 3, 5*time.Second)
	waitEvent(obs.EventWorkerRecover, 3, 5*time.Second)

	// Phase C — quiesce the noise, then kill interior relay worker 1
	// (parent of the 3,4 subtree in the d*=2 tree): confirmation must
	// fence it and re-parent the orphaned subtree.
	net.SetProbs(0, 0, 0)
	net.Crash(1)
	waitEvent(obs.EventWorkerDead, 1, 10*time.Second)
	waitEvent(obs.EventSwitchComplete, 0, 10*time.Second)

	// Let the spout replay its way to completion, then shut down.
	eng.WaitSpouts()
	eng.Drain(5 * time.Second)

	out := soakOutcome{
		Acked:   spout.ackedCount(),
		Dead:    eng.DeadWorkers(),
		Missing: map[int32]int{},
	}
	if tr, v, ok := eng.ActiveTree(0); ok {
		out.Nodes, out.Parents = tr.Flatten()
		out.Version = v
	}
	// The injected faults' handling, in order. Only workers 1 and 3 are
	// faulted; restricting to them keeps the trace free of incidental
	// scheduler noise while still covering every injected fault.
	for _, ev := range eng.Obs().Events.Recent(0) {
		switch ev.Kind {
		case obs.EventWorkerSuspect, obs.EventWorkerRecover, obs.EventWorkerDead:
			if ev.Worker == 1 || ev.Worker == 3 {
				out.Events = append(out.Events, fmt.Sprintf("%s/w%d", ev.Kind, ev.Worker))
			}
		case obs.EventTreeRebuild, obs.EventSwitchComplete:
			out.Events = append(out.Events, fmt.Sprintf("%s/v%d", ev.Kind, ev.Version))
		}
	}
	out.Replayed = eng.Metrics().TuplesFailed.Value() > 0
	for _, tid := range fan {
		if eng.WorkerOfTask(tid) == 1 {
			continue // dead worker's task: deliveries stopped at the crash
		}
		out.Missing[tid] = len(rec.missing(tid, soakTuples))
	}
	stopped = true
	eng.Stop()
	return out
}

func TestChaosSoak(t *testing.T) {
	const seed = 7
	run1 := runSoak(t, seed)

	// --- Delivery: at-least-once to every surviving fan task. ---
	if run1.Acked != soakTuples {
		t.Fatalf("acked %d of %d", run1.Acked, soakTuples)
	}
	for tid, n := range run1.Missing {
		if n != 0 {
			t.Fatalf("task %d missing %d ids", tid, n)
		}
	}
	if !run1.Replayed {
		t.Fatal("no reliability tree ever failed: the soak exercised no replay")
	}

	// --- Recovery: the rebuilt tree excludes the dead worker. ---
	if !reflect.DeepEqual(run1.Dead, []int32{1}) {
		t.Fatalf("dead workers = %v, want [1]", run1.Dead)
	}
	if run1.Version != 2 {
		t.Fatalf("final tree version = %d, want 2 (repair)", run1.Version)
	}
	for _, n := range run1.Nodes {
		if n == 1 {
			t.Fatalf("rebuilt tree still contains dead worker 1: %v", run1.Nodes)
		}
	}
	if len(run1.Nodes) != soakWorkers-1 {
		t.Fatalf("rebuilt tree has %d nodes, want %d: %v", len(run1.Nodes), soakWorkers-1, run1.Nodes)
	}

	// --- Event log tells the full story, in order. ---
	want := []string{
		obs.EventTreeRebuild + "/v1",    // initial tree
		obs.EventWorkerSuspect + "/w3",  // partition opens
		obs.EventWorkerRecover + "/w3",  // heal before confirmation
		obs.EventWorkerSuspect + "/w1",  // crash goes quiet
		obs.EventWorkerDead + "/w1",     // confirmed
		obs.EventTreeRebuild + "/v2",    // repair distributed
		obs.EventSwitchComplete + "/v2", // survivors acked, repair active
	}
	if !reflect.DeepEqual(run1.Events, want) {
		t.Fatalf("event sequence:\n got %v\nwant %v", run1.Events, want)
	}

	// --- Determinism: a second same-seed run reproduces the outcome. ---
	run2 := runSoak(t, seed)
	run2.Replayed = run1.Replayed // replay count is load-dependent; sequence is not
	if !reflect.DeepEqual(run1, run2) {
		t.Fatalf("same seed, different outcomes:\nrun1 %+v\nrun2 %+v", run1, run2)
	}
}
