// Package chaos provides a deterministic, seed-driven fault-injecting
// wrapper around any transport.Network — in-process channels, loopback TCP,
// or the emulated RDMA fabric. It injects the failures a distributed
// multicast tree actually meets: per-link message drop, delay (reordering),
// duplication, pairwise partitions, and whole-worker crashes.
//
// Determinism: each directed link owns a rand.Rand seeded from
// Config.Seed and the link's endpoints, and every Send draws a fixed
// number of variates regardless of which fault fires, so the fault pattern
// on a link depends only on the seed and that link's message sequence —
// not on cross-link interleaving or wall-clock time.
//
// Fault surfacing: drops and delays are silent (the sender sees success,
// as on a real lossy fabric); crashes and partitions fail fast with
// transport.ErrUnreachable, which transport.IsTransient classifies as
// retryable.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"whale/internal/transport"
)

// Config sets the seeded fault probabilities. Probabilities are evaluated
// per message; zero values inject nothing.
type Config struct {
	// Seed drives every per-link RNG. Runs with equal seeds and equal
	// per-link send sequences inject identical fault patterns.
	Seed int64
	// Drop is the probability a message is silently lost.
	Drop float64
	// Dup is the probability a delivered message is sent twice.
	Dup float64
	// Delay is the probability a message is held back before delivery.
	Delay float64
	// DelayMin/DelayMax bound the injected delay (defaults 200µs/2ms).
	DelayMin time.Duration
	DelayMax time.Duration
}

func (c Config) withDefaults() Config {
	if c.DelayMin <= 0 {
		c.DelayMin = 200 * time.Microsecond
	}
	if c.DelayMax < c.DelayMin {
		c.DelayMax = c.DelayMin + 2*time.Millisecond
	}
	return c
}

// Stats counts injected faults. All fields are atomic.
type Stats struct {
	Dropped     atomic.Int64 // messages silently lost
	Duplicated  atomic.Int64 // messages delivered twice
	Delayed     atomic.Int64 // messages held back
	Unreachable atomic.Int64 // sends refused by a crash or partition
	Slowed      atomic.Int64 // inbound messages throttled by SetSlow
}

// link is one directed link's fault state.
type link struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// Net is a fault-injecting transport.Network decorator.
type Net struct {
	inner transport.Network

	mu      sync.Mutex
	cfg     Config
	links   map[uint64]*link
	crashed map[transport.WorkerID]bool
	cut     map[uint64]bool // partitioned unordered pairs
	slow    map[transport.WorkerID]*atomic.Int64
	closed  bool

	done  chan struct{}
	wg    sync.WaitGroup // delayed-delivery goroutines
	stats Stats
}

// Wrap decorates inner with fault injection. The wrapper owns inner's
// lifecycle: closing the returned Net aborts pending delayed deliveries
// and then closes inner.
func Wrap(inner transport.Network, cfg Config) *Net {
	return &Net{
		inner:   inner,
		cfg:     cfg.withDefaults(),
		links:   map[uint64]*link{},
		crashed: map[transport.WorkerID]bool{},
		cut:     map[uint64]bool{},
		slow:    map[transport.WorkerID]*atomic.Int64{},
		done:    make(chan struct{}),
	}
}

// Register implements transport.Network. Faults are injected on the send
// side, except SetSlow, which throttles the worker's inbound handler.
func (n *Net) Register(id transport.WorkerID, h transport.Handler) (transport.Transport, error) {
	n.mu.Lock()
	delay, ok := n.slow[id]
	if !ok {
		delay = &atomic.Int64{}
		n.slow[id] = delay
	}
	n.mu.Unlock()
	slowed := func(from transport.WorkerID, payload []byte) {
		if d := delay.Load(); d > 0 {
			n.stats.Slowed.Add(1)
			select {
			case <-time.After(time.Duration(d)):
			case <-n.done:
			}
		}
		h(from, payload)
	}
	tr, err := n.inner.Register(id, slowed)
	if err != nil {
		return nil, err
	}
	return &faultTransport{net: n, id: id, inner: tr}, nil
}

// SetSlow makes worker id a slow consumer: every inbound message is held
// for delay inside the receive path before reaching the worker's handler,
// so the worker's inbound queue really fills and backpressure engages.
// A delay of 0 restores full speed.
func (n *Net) SetSlow(id transport.WorkerID, delay time.Duration) {
	n.mu.Lock()
	d, ok := n.slow[id]
	if !ok {
		d = &atomic.Int64{}
		n.slow[id] = d
	}
	n.mu.Unlock()
	d.Store(int64(delay))
}

// Close implements transport.Network: it aborts pending delayed
// deliveries, waits for their goroutines, then closes the inner network.
func (n *Net) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	close(n.done)
	n.wg.Wait()
	return n.inner.Close()
}

// Stats exposes the fault counters.
func (n *Net) Stats() *Stats { return &n.stats }

// SetProbs replaces the drop/dup/delay probabilities at runtime (e.g. to
// end a chaos phase and let the system converge).
func (n *Net) SetProbs(drop, dup, delay float64) {
	n.mu.Lock()
	n.cfg.Drop, n.cfg.Dup, n.cfg.Delay = drop, dup, delay
	n.mu.Unlock()
}

// Crash cuts every link to and from id, emulating a whole-worker crash.
// The worker's transport keeps accepting local calls, but nothing it sends
// leaves and nothing reaches it. Crashes are permanent.
func (n *Net) Crash(id transport.WorkerID) {
	n.mu.Lock()
	n.crashed[id] = true
	n.mu.Unlock()
}

// Partition cuts the pair of links between a and b (both directions).
func (n *Net) Partition(a, b transport.WorkerID) {
	n.mu.Lock()
	n.cut[pairKey(a, b)] = true
	n.mu.Unlock()
}

// Heal restores the links between a and b.
func (n *Net) Heal(a, b transport.WorkerID) {
	n.mu.Lock()
	delete(n.cut, pairKey(a, b))
	n.mu.Unlock()
}

// HealAll removes every partition (crashes stay).
func (n *Net) HealAll() {
	n.mu.Lock()
	n.cut = map[uint64]bool{}
	n.mu.Unlock()
}

// blocked reports whether the directed link from->to is severed; callers
// hold n.mu.
func (n *Net) blocked(from, to transport.WorkerID) bool {
	return n.crashed[from] || n.crashed[to] || n.cut[pairKey(from, to)]
}

// linkFor returns the directed link's state, creating it on first use;
// callers hold n.mu.
func (n *Net) linkFor(from, to transport.WorkerID) *link {
	k := uint64(uint32(from))<<32 | uint64(uint32(to))
	l, ok := n.links[k]
	if !ok {
		l = &link{rng: rand.New(rand.NewSource(n.cfg.Seed ^ mix(k)))}
		n.links[k] = l
	}
	return l
}

// send applies the fault pipeline to one message.
func (n *Net) send(from, to transport.WorkerID, inner transport.Transport, payload []byte) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("%w: chaos network closed", transport.ErrPeerClosed)
	}
	if n.blocked(from, to) {
		n.mu.Unlock()
		n.stats.Unreachable.Add(1)
		return fmt.Errorf("%w: chaos link %d->%d severed", transport.ErrUnreachable, from, to)
	}
	cfg := n.cfg
	l := n.linkFor(from, to)
	n.mu.Unlock()

	// Draw a fixed number of variates per send so the link's fault
	// sequence stays seed-deterministic no matter which branch fires.
	l.mu.Lock()
	pDrop := l.rng.Float64()
	pDup := l.rng.Float64()
	pDelay := l.rng.Float64()
	delayFrac := l.rng.Float64()
	l.mu.Unlock()

	if pDrop < cfg.Drop {
		n.stats.Dropped.Add(1)
		return nil // silent loss: the sender believes the send succeeded
	}
	if pDelay < cfg.Delay {
		n.stats.Delayed.Add(1)
		d := cfg.DelayMin + time.Duration(delayFrac*float64(cfg.DelayMax-cfg.DelayMin))
		cp := append([]byte(nil), payload...)
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return nil
		}
		n.wg.Add(1)
		n.mu.Unlock()
		go func() {
			defer n.wg.Done()
			select {
			case <-time.After(d):
			case <-n.done:
				return
			}
			n.mu.Lock()
			blocked := n.closed || n.blocked(from, to)
			n.mu.Unlock()
			if !blocked {
				// Late delivery is the point; a send error here is just
				// another (accounted) loss.
				_ = inner.Send(to, cp)
			}
		}()
		return nil
	}
	if err := inner.Send(to, payload); err != nil {
		return err
	}
	if pDup < cfg.Dup {
		n.stats.Duplicated.Add(1)
		return inner.Send(to, payload)
	}
	return nil
}

// faultTransport decorates one worker's transport. Traffic counters remain
// the inner transport's (only messages that really hit the wire count);
// injected faults are accounted in the Net's Stats.
type faultTransport struct {
	net   *Net
	id    transport.WorkerID
	inner transport.Transport
}

// Send implements transport.Transport.
func (t *faultTransport) Send(to transport.WorkerID, payload []byte) error {
	return t.net.send(t.id, to, t.inner, payload)
}

// Flush implements transport.Transport.
func (t *faultTransport) Flush() error { return t.inner.Flush() }

// Pressure implements transport.Transport, delegating to the inner link.
func (t *faultTransport) Pressure(to transport.WorkerID) int { return t.inner.Pressure(to) }

// Stats implements transport.Transport.
func (t *faultTransport) Stats() *transport.Stats { return t.inner.Stats() }

// Close implements transport.Transport.
func (t *faultTransport) Close() error { return t.inner.Close() }

// pairKey normalizes an unordered worker pair into one map key.
func pairKey(a, b transport.WorkerID) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// mix is a splitmix64 finalizer, decorrelating per-link seeds.
func mix(x uint64) int64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}
