package chaos_test

import (
	"encoding/binary"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/dsps"
	"whale/internal/kafkalite"
	"whale/internal/obs"
	"whale/internal/snapshot"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// Autoscale soak (`make chaos`): the closed loop end to end. A CPU-heavy
// bolt starts at parallelism 1 under a record burst that saturates it; the
// M/D/1 controller must confirm the overload, issue a scale-up through the
// rescale plane (aligned cut, state handoff, tree switch), the backlog must
// then drain, and once the load drops the controller must shrink the
// operator back. The [1, 2] clamp with MaxStep 1 pins the trajectory to
// exactly one scale-up and one scale-down regardless of timing jitter, so
// the filtered event trace is deterministic and must reproduce exactly
// under the same chaos seed.

const (
	asRecords = 1200
	asBurnNS  = 200_000 // per-tuple busy time: te = 200µs
)

// burnBolt spends asBurnNS of CPU per tuple — a deterministic service time
// the controller's te estimate converges to.
type burnBolt struct {
	executed *atomic.Int64
}

func (b *burnBolt) Prepare(*dsps.TaskContext) {}

func (b *burnBolt) Execute(*tuple.Tuple, *dsps.Collector) {
	start := time.Now()
	for time.Since(start) < asBurnNS*time.Nanosecond {
	}
	b.executed.Add(1)
}

func (b *burnBolt) Cleanup() {}

// asEventKinds filters the trace to the closed loop's observable actions.
// autoscale-rejected is deliberately excluded: the clamps make the decision
// trajectory deterministic, but a rejection's exact tick would depend on
// scheduler timing.
var asEventKinds = map[string]bool{
	obs.EventAutoscaleUp:      true,
	obs.EventAutoscaleDown:    true,
	obs.EventRescaleStarted:   true,
	obs.EventRescaleCommitted: true,
	obs.EventRescaleAborted:   true,
}

// asOutcome is what a run must reproduce exactly under the same seed.
type asOutcome struct {
	Events   []string
	FinalPar int
}

func runAutoscaleSoak(t *testing.T, seed int64) asOutcome {
	t.Helper()

	broker := kafkalite.NewBroker()
	if err := broker.CreateTopic("load", 1, 0); err != nil {
		t.Fatal(err)
	}

	var executed atomic.Int64
	decode := func(rec kafkalite.Record) []tuple.Value {
		return []tuple.Value{int64(binary.LittleEndian.Uint64(rec.Value))}
	}
	b := dsps.NewTopologyBuilder()
	b.Spout("src", func() dsps.Spout {
		return &kafkalite.Spout{Broker: broker, Topic: "load", Group: "as", Decode: decode, MaxPoll: 64}
	}, 1)
	b.Bolt("work", func() dsps.Bolt { return &burnBolt{executed: &executed} }, 1).Shuffle("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: seed})
	eng, err := dsps.Start(topo, dsps.Config{
		Workers: 2, Network: net,
		Comm: dsps.WorkerOriented, Multicast: dsps.MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		HeartbeatInterval:  10 * time.Millisecond,
		SuspectAfter:       60 * time.Millisecond,
		ConfirmAfter:       200 * time.Millisecond,
		CheckpointInterval: 10 * time.Millisecond,
		CheckpointTimeout:  2 * time.Second,
		CheckpointStore:    snapshot.NewMemStore(),
		Autoscale: dsps.AutoscaleConfig{
			Interval: 20 * time.Millisecond,
			RhoHigh:  0.8,
			RhoLow:   0.3,
			// Cooldown must outlast a worst-case plan commit (the aligned
			// barrier traverses the whole backlog) so the controller never
			// self-rejects by re-issuing into its own armed plan.
			Cooldown: 600 * time.Millisecond,
			MaxStep:  1,
			// The [1, 2] clamp pins the run to one up and one down.
			MinParallelism: 1,
			MaxParallelism: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			eng.Stop()
		}
	}()

	evCh, cancel := eng.Obs().Events.Subscribe(4096)
	defer cancel()
	var evMu sync.Mutex
	var events []string
	go func() {
		for ev := range evCh {
			if asEventKinds[ev.Kind] {
				evMu.Lock()
				events = append(events, ev.Kind)
				evMu.Unlock()
			}
		}
	}()
	countTrace := func(kind string) int {
		evMu.Lock()
		defer evMu.Unlock()
		n := 0
		for _, k := range events {
			if k == kind {
				n++
			}
		}
		return n
	}
	waitTrace := func(kind string, n int, within time.Duration) {
		t.Helper()
		deadline := time.Now().Add(within)
		for time.Now().Before(deadline) {
			if countTrace(kind) >= n {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("event %s #%d not observed within %v (trace so far: %v)", kind, n, within, events)
	}

	// Load step: a burst worth ~240ms of single-instance CPU. The bolt
	// saturates (ρ ≈ 1 > 0.8), the controller confirms over two intervals
	// and issues the scale-up through an aligned cut.
	for i := int64(0); i < asRecords; i++ {
		var rec [8]byte
		binary.LittleEndian.PutUint64(rec[:], uint64(i))
		if _, err := broker.ProduceTo("load", 0, nil, rec[:]); err != nil {
			t.Fatal(err)
		}
	}
	waitTrace(obs.EventAutoscaleUp, 1, 20*time.Second)
	waitTrace(obs.EventRescaleCommitted, 1, 30*time.Second)
	if par := len(eng.TasksOf("work")); par != 2 {
		t.Fatalf("parallelism after scale-up commit = %d, want 2", par)
	}

	// Backlog recovery: every produced record executes.
	deadline := time.Now().Add(30 * time.Second)
	for executed.Load() < asRecords && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := executed.Load(); got < asRecords {
		t.Fatalf("backlog never drained: %d/%d executed", got, asRecords)
	}

	// Load drop: no further records. Sustained ρ = 0 (sized with the
	// remembered service time) confirms below the band once the cooldown
	// from the scale-up expires, and the operator shrinks back.
	waitTrace(obs.EventAutoscaleDown, 1, 30*time.Second)
	waitTrace(obs.EventRescaleCommitted, 2, 30*time.Second)

	out := asOutcome{FinalPar: len(eng.TasksOf("work"))}
	eng.Stop()
	stopped = true
	cancel()
	time.Sleep(10 * time.Millisecond)
	evMu.Lock()
	out.Events = append([]string(nil), events...)
	evMu.Unlock()
	return out
}

// TestChaosAutoscaleSoak asserts the closed-loop story: a load step drives
// exactly one controller scale-up through the rescale plane, the backlog
// recovers, the load drop drives exactly one scale-down, and the same seed
// reproduces the identical filtered event trace.
func TestChaosAutoscaleSoak(t *testing.T) {
	run1 := runAutoscaleSoak(t, 31)
	// Engine.Rescale logs rescale-started before the controller records its
	// own action event, so the pair order is (started, autoscale-*).
	want := []string{
		obs.EventRescaleStarted, obs.EventAutoscaleUp, obs.EventRescaleCommitted,
		obs.EventRescaleStarted, obs.EventAutoscaleDown, obs.EventRescaleCommitted,
	}
	if !reflect.DeepEqual(run1.Events, want) {
		t.Fatalf("autoscale event trace:\n got %v\nwant %v", run1.Events, want)
	}
	if run1.FinalPar != 1 {
		t.Fatalf("final parallelism = %d, want 1 after the scale-down", run1.FinalPar)
	}

	run2 := runAutoscaleSoak(t, 31)
	if !reflect.DeepEqual(run1, run2) {
		t.Fatalf("same-seed autoscale runs diverge:\nrun1 %+v\nrun2 %+v", run1, run2)
	}
}
