package chaos_test

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/dsps"
	"whale/internal/kafkalite"
	"whale/internal/obs"
	"whale/internal/snapshot"
	"whale/internal/transport"
	"whale/internal/tuple"
)

// Churn soak (`make chaos`): elastic membership under fire. A keyed running
// sum flows through a fields-grouped aggregator while the cluster churns —
// a dormant worker joins, two operators grow onto it through rescale-aligned
// checkpoints, a worker is crashed with a shrink pending (which must roll
// back, never half-apply), the shrinks are re-issued after recovery, and the
// joined worker finally leaves once it hosts nothing. At the end the merged
// aggregator state must equal the static reference exactly — every record
// counted once across every split, merge, rollback and replay — and the
// membership event sequence must reproduce bit-for-bit under the same seed.

const (
	churnWorkers    = 4
	churnMaxWorkers = 5
	churnRecords    = 360
	churnPhase1     = 120 // records before the churn window
	churnPhase2     = 240 // records before the crash window
	churnKeys       = 16
)

func churnKey(i int64) string { return fmt.Sprintf("k-%d", i%churnKeys) }
func churnVal(i int64) int64  { return i%7 + 1 }

// churnReference computes the per-key sums a failure-free run converges to.
func churnReference() map[string]int64 {
	out := map[string]int64{}
	for i := int64(0); i < churnRecords; i++ {
		out[churnKey(i)] += churnVal(i)
	}
	return out
}

// shardAggBolt keeps per-key running sums. It implements snapshot.Sharder:
// the cut is keyed by grouping slot, so a rescale can split its state across
// more instances or merge it back — each restored instance keeps exactly the
// slots it owns under the new width.
type shardAggBolt struct {
	reg *churnRegistry

	mu   sync.Mutex
	sums map[string]int64
}

func (b *shardAggBolt) Prepare(ctx *dsps.TaskContext) {
	b.sums = map[string]int64{}
	b.reg.register(ctx.TaskID, b)
}

func (b *shardAggBolt) Execute(tp *tuple.Tuple, _ *dsps.Collector) {
	key, val := tp.StringAt(1), tp.Int(2)
	b.mu.Lock()
	b.sums[key] += val
	b.mu.Unlock()
}

func (b *shardAggBolt) Cleanup() {}

// encodeSums serializes key->sum pairs sorted by key (deterministic).
func encodeSums(sums map[string]int64) []byte {
	keys := make([]string, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(keys)))
	for _, k := range keys {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(k)))
		out = append(out, k...)
		out = binary.LittleEndian.AppendUint64(out, uint64(sums[k]))
	}
	return out
}

func decodeSums(data []byte, into map[string]int64) error {
	if len(data) < 4 {
		return fmt.Errorf("churn soak: truncated sums")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	for i := 0; i < n; i++ {
		if len(data) < 4 {
			return fmt.Errorf("churn soak: truncated key length")
		}
		kl := int(binary.LittleEndian.Uint32(data))
		data = data[4:]
		if len(data) < kl+8 {
			return fmt.Errorf("churn soak: truncated entry")
		}
		into[string(data[:kl])] = int64(binary.LittleEndian.Uint64(data[kl:]))
		data = data[kl+8:]
	}
	if len(data) != 0 {
		return fmt.Errorf("churn soak: %d trailing bytes", len(data))
	}
	return nil
}

// SnapshotState implements snapshot.Snapshotter.
func (b *shardAggBolt) SnapshotState() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return encodeSums(b.sums), nil
}

// RestoreState implements snapshot.Snapshotter.
func (b *shardAggBolt) RestoreState(data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sums = map[string]int64{}
	if data == nil {
		return nil
	}
	return decodeSums(data, b.sums)
}

// ShardSnapshot implements snapshot.Sharder: one shard per grouping slot
// that currently holds keys.
func (b *shardAggBolt) ShardSnapshot() (map[int32][]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	bySlot := map[int32]map[string]int64{}
	for k, v := range b.sums {
		s := dsps.SlotOf(k)
		if bySlot[s] == nil {
			bySlot[s] = map[string]int64{}
		}
		bySlot[s][k] = v
	}
	out := make(map[int32][]byte, len(bySlot))
	for s, m := range bySlot {
		out[s] = encodeSums(m)
	}
	return out, nil
}

// RestoreShards implements snapshot.Sharder: the union of the handed shards
// replaces the state wholesale.
func (b *shardAggBolt) RestoreShards(shards map[int32][]byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sums = map[string]int64{}
	for _, d := range shards {
		if err := decodeSums(d, b.sums); err != nil {
			return err
		}
	}
	return nil
}

// snapshot returns a copy of the current sums.
func (b *shardAggBolt) snapshot() map[string]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int64, len(b.sums))
	for k, v := range b.sums {
		out[k] = v
	}
	return out
}

// churnSpyBolt is a stateless all-grouping subscriber: its only job is to
// keep a multicast tree under the membership churn so joins and rescales
// exercise the versioned tree switch.
type churnSpyBolt struct{}

func (churnSpyBolt) Prepare(*dsps.TaskContext)             {}
func (churnSpyBolt) Execute(*tuple.Tuple, *dsps.Collector) {}
func (churnSpyBolt) Cleanup()                              {}

// churnRegistry maps task ids to live aggregator instances for readout.
type churnRegistry struct {
	mu    sync.Mutex
	bolts map[int32]*shardAggBolt
}

func (r *churnRegistry) register(task int32, b *shardAggBolt) {
	r.mu.Lock()
	r.bolts[task] = b
	r.mu.Unlock()
}

func (r *churnRegistry) get(task int32) *shardAggBolt {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bolts[task]
}

// churnOutcome is what a run must reproduce exactly under the same seed.
type churnOutcome struct {
	Events []string           // membership/rescale event kinds, in order
	Sums   map[string]int64   // merged per-key sums across live agg tasks
	Owners map[string][]int32 // key -> live tasks holding it (must be 1)
	Dead   []int32
}

// churnEventKinds is the filter for the deterministic event trace.
var churnEventKinds = map[string]bool{
	obs.EventWorkerJoined:     true,
	obs.EventWorkerLeft:       true,
	obs.EventWorkerDead:       true,
	obs.EventRescaleStarted:   true,
	obs.EventRescaleCommitted: true,
	obs.EventRescaleAborted:   true,
}

// churnProduce appends records [from, to) of the deterministic sequence.
func churnProduce(t *testing.T, broker *kafkalite.Broker, from, to int64) {
	t.Helper()
	for i := from; i < to; i++ {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(i))
		if _, err := broker.ProduceTo("orders", 0, nil, b[:]); err != nil {
			t.Fatal(err)
		}
	}
}

// runChurnSoak executes one run; with churn it drives the full membership
// schedule: join -> grow x2 -> crash with a shrink pending (rollback) ->
// recover -> shrink x2 -> leave.
func runChurnSoak(t *testing.T, seed int64, churn bool) churnOutcome {
	t.Helper()

	broker := kafkalite.NewBroker()
	if err := broker.CreateTopic("orders", 1, 0); err != nil {
		t.Fatal(err)
	}
	churnProduce(t, broker, 0, churnPhase1)

	reg := &churnRegistry{bolts: map[int32]*shardAggBolt{}}
	decode := func(rec kafkalite.Record) []tuple.Value {
		i := int64(binary.LittleEndian.Uint64(rec.Value))
		return []tuple.Value{i, churnKey(i), churnVal(i)}
	}
	b := dsps.NewTopologyBuilder()
	b.Spout("src", func() dsps.Spout {
		return &kafkalite.Spout{Broker: broker, Topic: "orders", Group: "churn", Decode: decode, MaxPoll: 8}
	}, 1)
	b.Bolt("agg", func() dsps.Bolt { return &shardAggBolt{reg: reg} }, 2).Fields("src", 1)
	b.Bolt("spy", func() dsps.Bolt { return churnSpyBolt{} }, 2).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: seed})
	eng, err := dsps.Start(topo, dsps.Config{
		Workers: churnWorkers, MaxWorkers: churnMaxWorkers, Network: net,
		Comm: dsps.WorkerOriented, Multicast: dsps.MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		HeartbeatInterval:  10 * time.Millisecond,
		SuspectAfter:       60 * time.Millisecond,
		ConfirmAfter:       200 * time.Millisecond,
		CheckpointInterval: 3 * time.Millisecond,
		CheckpointTimeout:  30 * time.Millisecond,
		CheckpointStore:    snapshot.NewMemStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			eng.Stop()
		}
	}()

	// The schedule assumes round-robin placement: spout (and coordinator) on
	// the never-crashed monitor worker 0, agg on 1/2, spy on 3/0.
	if w := eng.WorkerOfTask(eng.TasksOf("src")[0]); w != 0 {
		t.Fatalf("spout on worker %d; soak assumes worker 0", w)
	}
	for _, tid := range append(eng.TasksOf("agg"), eng.TasksOf("spy")...) {
		if w := eng.WorkerOfTask(tid); w != tid%churnWorkers {
			t.Fatalf("task %d on worker %d; soak assumes round-robin placement", tid, w)
		}
	}

	// Collect the membership/rescale event trace through a subscription: the
	// ring log evicts under 3ms epochs, a subscriber does not miss.
	evCh, cancel := eng.Obs().Events.Subscribe(4096)
	defer cancel()
	var evMu sync.Mutex
	var events []string
	go func() {
		for ev := range evCh {
			if churnEventKinds[ev.Kind] {
				evMu.Lock()
				events = append(events, ev.Kind)
				evMu.Unlock()
			}
		}
	}()
	countTrace := func(kind string) int {
		evMu.Lock()
		defer evMu.Unlock()
		n := 0
		for _, k := range events {
			if k == kind {
				n++
			}
		}
		return n
	}
	waitTrace := func(kind string, n int, within time.Duration) {
		t.Helper()
		deadline := time.Now().Add(within)
		for time.Now().Before(deadline) {
			if countTrace(kind) >= n {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("event %s #%d not observed within %v (trace so far: %v)", kind, n, within, events)
	}

	// Phase A — steady state: epochs commit under the initial membership.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().EpochsCompleted.Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if eng.Metrics().EpochsCompleted.Value() < 2 {
		t.Fatal("no epochs committed before churn window")
	}

	if churn {
		// Join: worker 4 handshakes in through the monitor.
		if err := eng.JoinWorker(4); err != nil {
			t.Fatal(err)
		}
		waitTrace(obs.EventWorkerJoined, 1, 10*time.Second)

		// Grow both operators onto the joined worker, one aligned cut each.
		// spy growth adds worker 4 to the multicast tree; agg growth splits
		// the keyed state 2 -> 3 ways by slot ownership.
		if err := eng.Rescale("spy", 3, 4); err != nil {
			t.Fatal(err)
		}
		waitTrace(obs.EventRescaleCommitted, 1, 15*time.Second)
		if err := eng.Rescale("agg", 3, 4); err != nil {
			t.Fatal(err)
		}
		waitTrace(obs.EventRescaleCommitted, 2, 15*time.Second)

		// More records flow through the 3-wide aggregator so its split state
		// is live (and checkpointed) before the crash.
		churnProduce(t, broker, churnPhase1, churnPhase2)
		ec := eng.Metrics().EpochsCompleted.Value()
		deadline = time.Now().Add(10 * time.Second)
		for eng.Metrics().EpochsCompleted.Value() < ec+2 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}

		// Crash worker 3 (hosts a spy task) and immediately request an agg
		// shrink: the aligned epoch can never complete — worker 3's barrier
		// acks died with it — so the plan must roll back deterministically
		// when the death confirms, never half-apply.
		net.Crash(3)
		if err := eng.Rescale("agg", 2); err != nil {
			t.Fatalf("shrink request right after crash: %v", err)
		}
		waitTrace(obs.EventWorkerDead, 1, 10*time.Second)
		waitTrace(obs.EventRescaleAborted, 1, 10*time.Second)
		deadline = time.Now().Add(15 * time.Second)
		for eng.Metrics().Restores.Value() < 1 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if eng.Metrics().Restores.Value() < 1 {
			t.Fatal("no restore completed after the crash")
		}

		// Re-issue the shrink after recovery (retries while the recovery
		// window still rejects it), then undo the spy growth and let the
		// now-empty worker leave.
		deadline = time.Now().Add(10 * time.Second)
		for {
			if err := eng.Rescale("agg", 2); err == nil {
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("agg shrink never accepted after recovery: %v", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		waitTrace(obs.EventRescaleCommitted, 3, 15*time.Second)
		if err := eng.Rescale("spy", 2); err != nil {
			t.Fatal(err)
		}
		waitTrace(obs.EventRescaleCommitted, 4, 15*time.Second)
		if err := eng.LeaveWorker(4); err != nil {
			t.Fatal(err)
		}
		waitTrace(obs.EventWorkerLeft, 1, 10*time.Second)
	}

	// Final phase — the rest of the stream; the merged aggregator state must
	// converge to the static reference.
	start := int64(churnPhase1)
	if churn {
		start = churnPhase2
	}
	churnProduce(t, broker, start, churnRecords)

	ref := churnReference()
	merged := func() map[string]int64 {
		out := map[string]int64{}
		for _, tid := range eng.TasksOf("agg") {
			bl := reg.get(tid)
			if bl == nil {
				return nil
			}
			for k, v := range bl.snapshot() {
				out[k] += v
			}
		}
		return out
	}
	deadline = time.Now().Add(30 * time.Second)
	for !reflect.DeepEqual(merged(), ref) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	out := churnOutcome{
		Sums:   merged(),
		Owners: map[string][]int32{},
		Dead:   eng.DeadWorkers(),
	}
	for _, tid := range eng.TasksOf("agg") {
		if bl := reg.get(tid); bl != nil {
			for k := range bl.snapshot() {
				out.Owners[k] = append(out.Owners[k], tid)
			}
		}
	}
	for _, owners := range out.Owners {
		sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
	}
	eng.Stop()
	stopped = true
	// The subscription closes with the engine; snapshot the trace after the
	// drain goroutine has consumed everything.
	cancel()
	time.Sleep(10 * time.Millisecond)
	evMu.Lock()
	out.Events = append([]string(nil), events...)
	evMu.Unlock()
	return out
}

// TestChaosChurnSoak asserts the elastic-membership story: the full churn
// schedule preserves exactly-once keyed state against the static reference,
// key ownership stays disjoint across every split and merge, the mid-crash
// shrink rolls back instead of half-applying, and the same seed reproduces
// the identical membership event sequence and final state.
func TestChaosChurnSoak(t *testing.T) {
	ref := churnReference()

	static := runChurnSoak(t, 23, false)
	if len(static.Events) != 0 || len(static.Dead) != 0 {
		t.Fatalf("static run saw churn: events=%v dead=%v", static.Events, static.Dead)
	}
	if !reflect.DeepEqual(static.Sums, ref) {
		t.Fatalf("static run sums diverge:\n got %v\nwant %v", static.Sums, ref)
	}

	run1 := runChurnSoak(t, 23, true)
	want := []string{
		obs.EventWorkerJoined,
		obs.EventRescaleStarted, obs.EventRescaleCommitted, // spy 2 -> 3
		obs.EventRescaleStarted, obs.EventRescaleCommitted, // agg 2 -> 3
		obs.EventRescaleStarted,                            // agg 3 -> 2, doomed
		obs.EventWorkerDead,                                // worker 3 confirmed dead
		obs.EventRescaleAborted,                            // the pending shrink rolls back
		obs.EventRescaleStarted, obs.EventRescaleCommitted, // agg 3 -> 2 re-issued
		obs.EventRescaleStarted, obs.EventRescaleCommitted, // spy 3 -> 2
		obs.EventWorkerLeft, // worker 4 departs empty
	}
	if !reflect.DeepEqual(run1.Events, want) {
		t.Fatalf("churn event trace:\n got %v\nwant %v", run1.Events, want)
	}
	if !reflect.DeepEqual(run1.Dead, []int32{3}) {
		t.Fatalf("dead workers = %v, want [3]", run1.Dead)
	}
	// Exactly-once across the churn: every record counted once despite two
	// splits, a rollback, a crash restore and two merges.
	if !reflect.DeepEqual(run1.Sums, ref) {
		t.Fatalf("churn run sums diverge:\n got %v\nwant %v", run1.Sums, ref)
	}
	// Slot ownership is a partition: no key is held by two live instances.
	for k, owners := range run1.Owners {
		if len(owners) != 1 {
			t.Fatalf("key %s held by tasks %v after the merge back", k, owners)
		}
	}

	// Determinism: a second churn run under the same seed reproduces the
	// event sequence and final state exactly.
	run2 := runChurnSoak(t, 23, true)
	if !reflect.DeepEqual(run1, run2) {
		t.Fatalf("same-seed churn runs diverge:\nrun1 %+v\nrun2 %+v", run1, run2)
	}
}
