package chaos_test

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/dsps"
	"whale/internal/kafkalite"
	"whale/internal/obs"
	"whale/internal/snapshot"
	"whale/internal/transport"
	"whale/internal/tuple"
	"whale/internal/window"
)

// Checkpoint soak (`make chaos`): exactly-once windowed aggregation through
// an interior-relay crash. A kafkalite topic feeds event-timed records
// through an all-grouping multicast tree into windowed-sum sinks whose
// emission log is part of their own checkpointed state (the transactional-
// sink trick). Mid-stream, the relay parent of half the sinks is crashed
// while epochs are in flight; recovery must abort the wedged epoch, restore
// every survivor from the last committed snapshot, rewind the source to the
// matching offsets, and replay — after which every surviving sink's fired-
// window log must be byte-identical to a failure-free run: no window lost,
// no contribution duplicated, deterministically across same-seed runs.

const (
	ckptSoakRecords = 360
	ckptSoakPhase1  = 120 // records produced before the crash window
	ckptSoakTickNS  = int64(time.Millisecond)
	ckptSoakWidth   = 20 * time.Millisecond
	ckptSentinelTS  = int64(1) << 40 // flushes every open window
)

// ckptRecordTS/ckptRecordVal derive a record's event time and value from
// its index, so the topic content is a pure function of the index sequence.
func ckptRecordTS(i int64) int64  { return i * ckptSoakTickNS }
func ckptRecordVal(i int64) int64 { return i%7 + 1 }

// ckptWindowBolt is a windowed-sum sink. Everything that defines its output
// — the open-window buffer AND the log of already-fired windows — lives in
// the snapshotted state, so a rollback rewinds its emissions too and replay
// rebuilds exactly the suffix.
type ckptWindowBolt struct {
	reg *ckptRegistry

	mu      sync.Mutex
	buf     *window.Buffer[int64]
	emitted [][2]int64 // (window start, sum) in fire order
}

func (b *ckptWindowBolt) Prepare(ctx *dsps.TaskContext) {
	b.buf = window.NewBuffer[int64](window.Tumbling{Width: ckptSoakWidth}, 0)
	b.reg.register(ctx.TaskID, b)
}

func (b *ckptWindowBolt) Execute(tp *tuple.Tuple, _ *dsps.Collector) {
	ts, val := tp.Int(0), tp.Int(1)
	b.mu.Lock()
	defer b.mu.Unlock()
	if ts != ckptSentinelTS {
		b.buf.Add(ts, val)
	}
	// Single topic partition + per-link FIFO: ts is monotone, so it is the
	// watermark.
	for _, f := range b.buf.Advance(ts) {
		var sum int64
		for _, v := range f.Items {
			sum += v
		}
		b.emitted = append(b.emitted, [2]int64{f.Start, sum})
	}
}

func (b *ckptWindowBolt) Cleanup() {}

// SnapshotState implements snapshot.Snapshotter.
func (b *ckptWindowBolt) SnapshotState() ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	buf := b.buf.AppendSnapshot(nil, appendI64)
	out := binary.LittleEndian.AppendUint32(nil, uint32(len(buf)))
	out = append(out, buf...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b.emitted)))
	for _, e := range b.emitted {
		out = appendI64(out, e[0])
		out = appendI64(out, e[1])
	}
	return out, nil
}

// RestoreState implements snapshot.Snapshotter.
func (b *ckptWindowBolt) RestoreState(data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if data == nil {
		b.emitted = nil
		return b.buf.RestoreSnapshot(nil, decodeI64)
	}
	if len(data) < 4 {
		return fmt.Errorf("ckpt soak: truncated bolt snapshot")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) < n+4 {
		return fmt.Errorf("ckpt soak: truncated bolt snapshot")
	}
	if err := b.buf.RestoreSnapshot(data[:n], decodeI64); err != nil {
		return err
	}
	data = data[n:]
	ne := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) != 16*ne {
		return fmt.Errorf("ckpt soak: bolt snapshot emitted-log length %d, want %d", len(data), 16*ne)
	}
	b.emitted = make([][2]int64, ne)
	for i := range b.emitted {
		b.emitted[i][0] = int64(binary.LittleEndian.Uint64(data[16*i:]))
		b.emitted[i][1] = int64(binary.LittleEndian.Uint64(data[16*i+8:]))
	}
	return nil
}

// windows returns a copy of the fired-window log.
func (b *ckptWindowBolt) windows() [][2]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([][2]int64(nil), b.emitted...)
}

func appendI64(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func decodeI64(buf []byte) (int64, int, error) {
	if len(buf) < 8 {
		return 0, 0, fmt.Errorf("ckpt soak: truncated element")
	}
	return int64(binary.LittleEndian.Uint64(buf)), 8, nil
}

// ckptRegistry maps task ids to live bolt instances for post-run readout.
type ckptRegistry struct {
	mu    sync.Mutex
	bolts map[int32]*ckptWindowBolt
}

func (r *ckptRegistry) register(task int32, b *ckptWindowBolt) {
	r.mu.Lock()
	r.bolts[task] = b
	r.mu.Unlock()
}

func (r *ckptRegistry) get(task int32) *ckptWindowBolt {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bolts[task]
}

// ckptSoakOutcome is what a run must reproduce exactly under the same seed.
type ckptSoakOutcome struct {
	Windows  map[int32][][2]int64 // surviving sink task -> fired windows
	Dead     []int32
	Aborted  bool // >=1 epoch aborted
	Restored bool // >=1 cluster restore completed
}

// ckptReferenceWindows computes the failure-free fired-window log every
// sink must converge to, using the same window.Buffer semantics.
func ckptReferenceWindows() [][2]int64 {
	buf := window.NewBuffer[int64](window.Tumbling{Width: ckptSoakWidth}, 0)
	var out [][2]int64
	fire := func(watermark int64) {
		for _, f := range buf.Advance(watermark) {
			var sum int64
			for _, v := range f.Items {
				sum += v
			}
			out = append(out, [2]int64{f.Start, sum})
		}
	}
	for i := int64(0); i < ckptSoakRecords; i++ {
		buf.Add(ckptRecordTS(i), ckptRecordVal(i))
		fire(ckptRecordTS(i))
	}
	fire(ckptSentinelTS)
	return out
}

// ckptProduce appends records [from, to) of the deterministic sequence.
func ckptProduce(t *testing.T, broker *kafkalite.Broker, from, to int64) {
	t.Helper()
	for i := from; i < to; i++ {
		if _, err := broker.ProduceTo("trades", 0, nil, appendI64(nil, i)); err != nil {
			t.Fatal(err)
		}
	}
}

// runCkptSoak executes one checkpointed windowed run, optionally crashing
// the interior relay (worker 1) mid-stream with epochs in flight.
func runCkptSoak(t *testing.T, seed int64, crash bool) ckptSoakOutcome {
	t.Helper()

	broker := kafkalite.NewBroker()
	if err := broker.CreateTopic("trades", 1, 0); err != nil {
		t.Fatal(err)
	}
	ckptProduce(t, broker, 0, ckptSoakPhase1)

	reg := &ckptRegistry{bolts: map[int32]*ckptWindowBolt{}}
	decode := func(rec kafkalite.Record) []tuple.Value {
		i := int64(binary.LittleEndian.Uint64(rec.Value))
		if i >= ckptSoakRecords {
			return []tuple.Value{ckptSentinelTS, int64(0)}
		}
		return []tuple.Value{ckptRecordTS(i), ckptRecordVal(i)}
	}
	b := dsps.NewTopologyBuilder()
	b.Spout("src", func() dsps.Spout {
		return &kafkalite.Spout{Broker: broker, Topic: "trades", Group: "soak", Decode: decode, MaxPoll: 8}
	}, 1)
	b.Bolt("win", func() dsps.Bolt { return &ckptWindowBolt{reg: reg} }, soakWorkers-1).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	net := chaos.Wrap(transport.NewInprocNetwork(0), chaos.Config{Seed: seed})
	eng, err := dsps.Start(topo, dsps.Config{
		Workers: soakWorkers, Network: net,
		Comm: dsps.WorkerOriented, Multicast: dsps.MulticastNonBlocking,
		FixedDstar: true, InitialDstar: 2,
		HeartbeatInterval:  10 * time.Millisecond,
		SuspectAfter:       60 * time.Millisecond,
		ConfirmAfter:       200 * time.Millisecond,
		CheckpointInterval: 3 * time.Millisecond,
		CheckpointTimeout:  30 * time.Millisecond,
		CheckpointStore:    snapshot.NewMemStore(),
	})
	if err != nil {
		t.Fatal(err)
	}
	stopped := false
	defer func() {
		if !stopped {
			eng.Stop()
		}
	}()

	// The crash schedule assumes round-robin placement: the spout (and the
	// checkpoint coordinator's home) on the never-crashed monitor worker 0,
	// sinks on 1..4, worker 1 the d*=2 tree's interior relay.
	if w := eng.WorkerOfTask(eng.TasksOf("src")[0]); w != 0 {
		t.Fatalf("spout on worker %d; soak assumes worker 0", w)
	}
	sinks := eng.TasksOf("win")
	for _, tid := range sinks {
		if w := eng.WorkerOfTask(tid); w != tid%soakWorkers {
			t.Fatalf("task %d on worker %d; soak assumes round-robin placement", tid, w)
		}
	}

	waitEvent := func(kind string, worker int32, within time.Duration) {
		t.Helper()
		deadline := time.Now().Add(within)
		for time.Now().Before(deadline) {
			for _, ev := range eng.Obs().Events.Recent(0) {
				if ev.Kind == kind && ev.Worker == worker {
					return
				}
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("event %s(worker %d) not observed within %v", kind, worker, within)
	}

	// Phase A — steady state: first batch flows, epochs commit.
	deadline := time.Now().Add(10 * time.Second)
	for eng.Metrics().EpochsCompleted.Value() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if eng.Metrics().EpochsCompleted.Value() < 2 {
		t.Fatal("no epochs committed before crash window")
	}

	// Phase B — crash the interior relay with an epoch almost certainly in
	// flight (3ms interval): the wedged epoch must abort, trees repair, and
	// the cluster restore from the last committed epoch with source rewind.
	if crash {
		net.Crash(1)
		waitEvent(obs.EventWorkerDead, 1, 10*time.Second)
		waitEvent(obs.EventSnapshotRestored, 0, 15*time.Second)
	}

	// Phase C — the rest of the stream plus the watermark sentinel.
	ckptProduce(t, broker, ckptSoakPhase1, ckptSoakRecords+1)

	// Run until every surviving sink fired the final window.
	ref := ckptReferenceWindows()
	last := ref[len(ref)-1]
	surviving := func() []int32 {
		dead := map[int32]bool{}
		for _, w := range eng.DeadWorkers() {
			dead[w] = true
		}
		var out []int32
		for _, tid := range sinks {
			if !dead[eng.WorkerOfTask(tid)] {
				out = append(out, tid)
			}
		}
		return out
	}
	done := func() bool {
		for _, tid := range surviving() {
			bl := reg.get(tid)
			if bl == nil {
				return false
			}
			w := bl.windows()
			if len(w) == 0 || w[len(w)-1] != last {
				return false
			}
		}
		return true
	}
	deadline = time.Now().Add(30 * time.Second)
	for !done() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	out := ckptSoakOutcome{
		Windows:  map[int32][][2]int64{},
		Dead:     eng.DeadWorkers(),
		Aborted:  eng.Metrics().EpochsAborted.Value() > 0,
		Restored: eng.Metrics().Restores.Value() > 0,
	}
	for _, tid := range surviving() {
		if bl := reg.get(tid); bl != nil {
			out.Windows[tid] = bl.windows()
		}
	}
	eng.Stop()
	stopped = true
	return out
}

// TestChaosCheckpointSoak asserts the exactly-once recovery story: crashed
// runs emit byte-identical window logs to the failure-free run on every
// surviving sink, and same-seed crashed runs reproduce each other exactly.
func TestChaosCheckpointSoak(t *testing.T) {
	ref := ckptReferenceWindows()

	clean := runCkptSoak(t, 11, false)
	if len(clean.Dead) != 0 || clean.Restored {
		t.Fatalf("clean run saw failures: dead=%v restored=%v", clean.Dead, clean.Restored)
	}
	for tid, w := range clean.Windows {
		if !reflect.DeepEqual(w, ref) {
			t.Fatalf("clean run task %d windows diverge from reference:\n got %v\nwant %v", tid, w, ref)
		}
	}

	run1 := runCkptSoak(t, 11, true)
	if !reflect.DeepEqual(run1.Dead, []int32{1}) {
		t.Fatalf("dead workers = %v, want [1]", run1.Dead)
	}
	if !run1.Aborted {
		t.Fatal("crash run aborted no epoch; crash missed the in-flight window")
	}
	if !run1.Restored {
		t.Fatal("crash run completed no restore")
	}
	// Exactly-once: despite the crash, abort, rollback and replay, every
	// surviving sink's full emission log equals the failure-free one — no
	// window lost to the dead relay, none double-counted by the rewind.
	if len(run1.Windows) != soakWorkers-2 {
		t.Fatalf("surviving sinks = %d, want %d", len(run1.Windows), soakWorkers-2)
	}
	for tid, w := range run1.Windows {
		if !reflect.DeepEqual(w, ref) {
			t.Fatalf("crash run task %d windows diverge from reference:\n got %v\nwant %v", tid, w, ref)
		}
	}

	// Determinism: a second crashed run under the same seed reproduces the
	// outcome exactly.
	run2 := runCkptSoak(t, 11, true)
	if !reflect.DeepEqual(run1, run2) {
		t.Fatalf("same-seed crash runs diverge:\nrun1 %+v\nrun2 %+v", run1, run2)
	}
}
