package chaos_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"whale/internal/chaos"
	"whale/internal/transport"
)

// recorder collects inbound payloads per worker.
type recorder struct {
	mu   sync.Mutex
	msgs map[transport.WorkerID][]string
}

func newRecorder() *recorder {
	return &recorder{msgs: map[transport.WorkerID][]string{}}
}

func (r *recorder) handler(self transport.WorkerID) transport.Handler {
	return func(from transport.WorkerID, payload []byte) {
		r.mu.Lock()
		r.msgs[self] = append(r.msgs[self], string(payload))
		r.mu.Unlock()
	}
}

// counts returns how many times each distinct payload reached worker id.
func (r *recorder) counts(id transport.WorkerID) map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[string]int{}
	for _, m := range r.msgs[id] {
		out[m]++
	}
	return out
}

// startPair wires two workers over a chaos-wrapped inproc network.
func startPair(t *testing.T, cfg chaos.Config) (*chaos.Net, []transport.Transport, *recorder) {
	t.Helper()
	net := chaos.Wrap(transport.NewInprocNetwork(0), cfg)
	rec := newRecorder()
	trs := make([]transport.Transport, 3)
	for id := transport.WorkerID(0); id < 3; id++ {
		tr, err := net.Register(id, rec.handler(id))
		if err != nil {
			t.Fatal(err)
		}
		trs[id] = tr
	}
	t.Cleanup(func() { _ = net.Close() })
	return net, trs, rec
}

// run sends n distinct messages 0->1 and waits out any injected delay.
func run(t *testing.T, trs []transport.Transport, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := trs[0].Send(1, []byte(fmt.Sprintf("m%04d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	time.Sleep(50 * time.Millisecond) // > DelayMax: all delayed deliveries fired
}

func TestSameSeedSameFaultPattern(t *testing.T) {
	cfg := chaos.Config{
		Seed: 42, Drop: 0.3, Dup: 0.2, Delay: 0.3,
		DelayMin: 100 * time.Microsecond, DelayMax: 2 * time.Millisecond,
	}
	const n = 400
	_, trs1, rec1 := startPair(t, cfg)
	run(t, trs1, n)
	_, trs2, rec2 := startPair(t, cfg)
	run(t, trs2, n)

	c1, c2 := rec1.counts(1), rec2.counts(1)
	if len(c1) == 0 || len(c1) == n {
		t.Fatalf("fault pattern degenerate: %d of %d delivered", len(c1), n)
	}
	if len(c1) != len(c2) {
		t.Fatalf("same seed, different delivered sets: %d vs %d", len(c1), len(c2))
	}
	for m, k := range c1 {
		if c2[m] != k {
			t.Fatalf("same seed, message %q delivered %d vs %d times", m, k, c2[m])
		}
	}
}

func TestDifferentSeedDifferentFaultPattern(t *testing.T) {
	const n = 400
	mk := func(seed int64) map[string]int {
		_, trs, rec := startPair(t, chaos.Config{
			Seed: seed, Drop: 0.3,
			DelayMin: 100 * time.Microsecond, DelayMax: time.Millisecond,
		})
		run(t, trs, n)
		return rec.counts(1)
	}
	a, b := mk(1), mk(2)
	same := true
	for i := 0; i < n; i++ {
		m := fmt.Sprintf("m%04d", i)
		if (a[m] == 0) != (b[m] == 0) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 dropped the exact same messages")
	}
}

func TestDropAll(t *testing.T) {
	net, trs, rec := startPair(t, chaos.Config{Drop: 1})
	run(t, trs, 50)
	if got := len(rec.counts(1)); got != 0 {
		t.Fatalf("Drop=1 delivered %d messages", got)
	}
	if d := net.Stats().Dropped.Load(); d != 50 {
		t.Fatalf("Dropped=%d, want 50", d)
	}
}

func TestDupAll(t *testing.T) {
	net, trs, rec := startPair(t, chaos.Config{Dup: 1})
	run(t, trs, 50)
	for m, k := range rec.counts(1) {
		if k != 2 {
			t.Fatalf("Dup=1: message %q delivered %d times, want 2", m, k)
		}
	}
	if d := net.Stats().Duplicated.Load(); d != 50 {
		t.Fatalf("Duplicated=%d, want 50", d)
	}
}

func TestDelayStillDelivers(t *testing.T) {
	net, trs, rec := startPair(t, chaos.Config{
		Delay: 1, DelayMin: 100 * time.Microsecond, DelayMax: 2 * time.Millisecond,
	})
	run(t, trs, 50)
	if got := len(rec.counts(1)); got != 50 {
		t.Fatalf("Delay=1 delivered %d of 50", got)
	}
	if d := net.Stats().Delayed.Load(); d != 50 {
		t.Fatalf("Delayed=%d, want 50", d)
	}
}

func TestCrashSeversBothDirections(t *testing.T) {
	net, trs, _ := startPair(t, chaos.Config{})
	net.Crash(1)
	errTo := trs[0].Send(1, []byte("x"))
	errFrom := trs[1].Send(0, []byte("y"))
	for _, err := range []error{errTo, errFrom} {
		if !errors.Is(err, transport.ErrUnreachable) {
			t.Fatalf("crashed link error = %v, want ErrUnreachable", err)
		}
		if !transport.IsTransient(err) {
			t.Fatalf("ErrUnreachable not classified transient: %v", err)
		}
	}
	if u := net.Stats().Unreachable.Load(); u != 2 {
		t.Fatalf("Unreachable=%d, want 2", u)
	}
	// Unrelated links stay up.
	if err := trs[0].Send(2, []byte("z")); err != nil {
		t.Fatalf("unrelated link failed: %v", err)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	net, trs, rec := startPair(t, chaos.Config{})
	net.Partition(0, 1)
	if err := trs[0].Send(1, []byte("cut")); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("partitioned send = %v, want ErrUnreachable", err)
	}
	if err := trs[1].Send(0, []byte("cut")); !errors.Is(err, transport.ErrUnreachable) {
		t.Fatalf("reverse partitioned send = %v, want ErrUnreachable", err)
	}
	// The third worker is unaffected by the pairwise cut.
	if err := trs[0].Send(2, []byte("ok")); err != nil {
		t.Fatalf("0->2 during partition: %v", err)
	}
	net.Heal(0, 1)
	if err := trs[0].Send(1, []byte("healed")); err != nil {
		t.Fatalf("send after heal: %v", err)
	}
	time.Sleep(10 * time.Millisecond)
	if rec.counts(1)["healed"] != 1 {
		t.Fatal("healed link did not deliver")
	}
}

func TestSetProbsTakesEffect(t *testing.T) {
	net, trs, rec := startPair(t, chaos.Config{Drop: 1})
	run(t, trs, 20)
	if got := len(rec.counts(1)); got != 0 {
		t.Fatalf("pre-SetProbs delivered %d", got)
	}
	net.SetProbs(0, 0, 0)
	for i := 0; i < 20; i++ {
		if err := trs[0].Send(1, []byte(fmt.Sprintf("p%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(10 * time.Millisecond)
	if got := len(rec.counts(1)) - 0; got != 20 {
		t.Fatalf("post-SetProbs delivered %d of 20", got)
	}
}

func TestCloseAbortsDelayedAndIsIdempotent(t *testing.T) {
	net, trs, _ := startPair(t, chaos.Config{
		Delay: 1, DelayMin: time.Second, DelayMax: 2 * time.Second,
	})
	for i := 0; i < 10; i++ {
		if err := trs[0].Send(1, []byte("late")); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = net.Close()
		_ = net.Close()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked on in-flight delayed deliveries")
	}
	if err := trs[0].Send(1, []byte("x")); !errors.Is(err, transport.ErrPeerClosed) {
		t.Fatalf("send after close = %v, want ErrPeerClosed", err)
	}
}
