package window

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

func encInt(dst []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(v))
}

func decInt(buf []byte) (int64, int, error) {
	if len(buf) < 8 {
		return 0, 0, errSnapshotTruncated
	}
	return int64(binary.LittleEndian.Uint64(buf)), 8, nil
}

func TestBufferSnapshotRoundTrip(t *testing.T) {
	b := NewBuffer[int64](Tumbling{Width: 10 * time.Nanosecond}, 20*time.Nanosecond)
	for _, ts := range []int64{1, 5, 12, 15, 23, 31} {
		b.Add(ts, ts*100)
	}
	fired := b.Advance(20) // fires windows [0,10) and [10,20)
	if len(fired) != 2 {
		t.Fatalf("fired %d windows", len(fired))
	}
	b.Add(3, 42) // late, inside allowance but window fired -> dropped
	if b.DroppedLate != 1 {
		t.Fatalf("DroppedLate = %d", b.DroppedLate)
	}

	snap := b.AppendSnapshot(nil, encInt)

	// Deterministic: an equal-state buffer snapshots to identical bytes.
	b2 := NewBuffer[int64](Tumbling{Width: 10 * time.Nanosecond}, 20*time.Nanosecond)
	for _, ts := range []int64{1, 5, 12, 15, 23, 31} {
		b2.Add(ts, ts*100)
	}
	b2.Advance(20)
	b2.Add(3, 42)
	if !bytes.Equal(snap, b2.AppendSnapshot(nil, encInt)) {
		t.Fatal("equal-state buffers produced different snapshots")
	}

	// Restore into a fresh buffer and check behavior matches.
	r := NewBuffer[int64](Tumbling{Width: 10 * time.Nanosecond}, 20*time.Nanosecond)
	if err := r.RestoreSnapshot(snap, decInt); err != nil {
		t.Fatal(err)
	}
	if r.DroppedLate != 1 || r.Pending() != b.Pending() {
		t.Fatalf("restored dropped=%d pending=%d, want 1,%d", r.DroppedLate, r.Pending(), b.Pending())
	}
	want := b.Advance(100)
	got := r.Advance(100)
	if len(want) != len(got) {
		t.Fatalf("restored fired %d windows, original %d", len(got), len(want))
	}
	for i := range want {
		if want[i].Start != got[i].Start || len(want[i].Items) != len(got[i].Items) {
			t.Fatalf("window %d mismatch: %+v vs %+v", i, want[i], got[i])
		}
		for j := range want[i].Items {
			if want[i].Items[j] != got[i].Items[j] {
				t.Fatalf("window %d item %d: %d vs %d", i, j, want[i].Items[j], got[i].Items[j])
			}
		}
	}
	// The fired set survived: the same late element is still late.
	r2 := NewBuffer[int64](Tumbling{Width: 10 * time.Nanosecond}, 20*time.Nanosecond)
	if err := r2.RestoreSnapshot(snap, decInt); err != nil {
		t.Fatal(err)
	}
	r2.Add(3, 42)
	if r2.DroppedLate != 2 {
		t.Fatalf("fired set lost in snapshot: DroppedLate = %d", r2.DroppedLate)
	}
}

func TestBufferSnapshotResetAndErrors(t *testing.T) {
	b := NewBuffer[int64](Tumbling{Width: 10 * time.Nanosecond}, 0)
	b.Add(1, 7)
	if err := b.RestoreSnapshot(nil, decInt); err != nil {
		t.Fatal(err)
	}
	if b.Pending() != 0 || b.DroppedLate != 0 {
		t.Fatal("nil snapshot must reset state")
	}
	b.Add(1, 7)
	snap := b.AppendSnapshot(nil, encInt)
	for cut := 1; cut < len(snap); cut++ {
		if err := b.RestoreSnapshot(snap[:cut], decInt); err == nil {
			t.Fatalf("restore of %d/%d bytes succeeded", cut, len(snap))
		}
	}
	if err := b.RestoreSnapshot(append(snap, 0), decInt); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestCountBufferSnapshotRoundTrip(t *testing.T) {
	b := NewCountBuffer[int64](5)
	b.Add(1)
	b.Add(2)
	snap := b.AppendSnapshot(nil, encInt)
	r := NewCountBuffer[int64](5)
	if err := r.RestoreSnapshot(snap, decInt); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("restored fill %d", r.Len())
	}
	r.Add(3)
	r.Add(4)
	if out := r.Add(5); len(out) != 5 || out[0] != 1 || out[4] != 5 {
		t.Fatalf("restored window fired %v", out)
	}
	if err := r.RestoreSnapshot(nil, decInt); err != nil || r.Len() != 0 {
		t.Fatalf("reset: len=%d err=%v", r.Len(), err)
	}
}

func TestWatermarkSnapshotRoundTrip(t *testing.T) {
	w := NewWatermark(5 * time.Nanosecond)
	w.Observe(100)
	snap := w.AppendSnapshot(nil)
	r := NewWatermark(5 * time.Nanosecond)
	if err := r.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if r.Current() != 95 {
		t.Fatalf("restored watermark %d", r.Current())
	}
	// An older event after restore does not regress the watermark.
	if r.Observe(50) != 95 {
		t.Fatal("watermark regressed after restore")
	}
	if err := r.RestoreSnapshot(nil); err != nil || r.Current() != 0 {
		t.Fatalf("reset: current=%d err=%v", r.Current(), err)
	}
}
