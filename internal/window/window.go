// Package window implements the time- and count-based windowing substrate
// a stream join runs on: tumbling and sliding event-time windows with
// watermark-driven firing, and count windows. The paper's evaluation
// applications are stream joins (§5.1 — order matching over driver
// locations, buy/sell matching); real deployments of those joins bound
// their state with exactly these windows.
package window

import (
	"fmt"
	"sort"
	"time"
)

// Assigner maps an element's event time to the starts of every window that
// must contain it.
type Assigner interface {
	// Windows returns the start timestamps (ns) of the element's windows.
	Windows(ts int64) []int64
	// Size returns the window length (ns).
	Size() int64
}

// Tumbling assigns each element to exactly one fixed, non-overlapping
// window: [k·size, (k+1)·size).
type Tumbling struct {
	// Width is the window length.
	Width time.Duration
}

// Windows implements Assigner.
func (t Tumbling) Windows(ts int64) []int64 {
	size := t.Width.Nanoseconds()
	start := ts - mod(ts, size)
	return []int64{start}
}

// Size implements Assigner.
func (t Tumbling) Size() int64 { return t.Width.Nanoseconds() }

// Sliding assigns each element to size/slide overlapping windows.
type Sliding struct {
	// Width is the window length; Slide the hop between window starts.
	Width, Slide time.Duration
}

// Windows implements Assigner.
func (s Sliding) Windows(ts int64) []int64 {
	size, slide := s.Width.Nanoseconds(), s.Slide.Nanoseconds()
	if slide <= 0 || size < slide {
		panic(fmt.Sprintf("window: invalid sliding window size=%d slide=%d", size, slide))
	}
	last := ts - mod(ts, slide) // latest window start containing ts
	var out []int64
	for start := last; start > ts-size; start -= slide {
		out = append(out, start)
	}
	// Ascending order reads naturally in tests and output.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// Size implements Assigner.
func (s Sliding) Size() int64 { return s.Width.Nanoseconds() }

// mod is a floored modulo, correct for negative timestamps.
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// Fired is one completed window.
type Fired[T any] struct {
	// Start and End delimit the window: [Start, End).
	Start, End int64
	// Items holds the window's elements in insertion order.
	Items []T
}

// Buffer accumulates elements into event-time windows and fires windows
// whose end has passed the watermark. Not safe for concurrent use; each
// operator instance owns one.
type Buffer[T any] struct {
	assigner Assigner
	// Lateness keeps a fired window's state around so late elements within
	// the allowance still land; beyond it they are dropped and counted.
	lateness int64
	windows  map[int64][]T
	fired    map[int64]bool
	// DroppedLate counts elements older than watermark - lateness.
	DroppedLate int64
}

// NewBuffer creates a window buffer with the given allowed lateness.
func NewBuffer[T any](a Assigner, allowedLateness time.Duration) *Buffer[T] {
	return &Buffer[T]{
		assigner: a,
		lateness: allowedLateness.Nanoseconds(),
		windows:  map[int64][]T{},
		fired:    map[int64]bool{},
	}
}

// Add places v (with event time ts) into its windows. Elements whose every
// window already fired past the lateness allowance are dropped.
func (b *Buffer[T]) Add(ts int64, v T) {
	landed := false
	for _, start := range b.assigner.Windows(ts) {
		if b.fired[start] {
			continue
		}
		b.windows[start] = append(b.windows[start], v)
		landed = true
	}
	if !landed {
		b.DroppedLate++
	}
}

// Advance moves the watermark and returns every window whose end is at or
// before it, in start order. Fired windows older than the lateness
// allowance are forgotten.
func (b *Buffer[T]) Advance(watermark int64) []Fired[T] {
	size := b.assigner.Size()
	var ready []int64
	for start := range b.windows {
		if start+size <= watermark {
			ready = append(ready, start)
		}
	}
	sort.Slice(ready, func(i, j int) bool { return ready[i] < ready[j] })
	out := make([]Fired[T], 0, len(ready))
	for _, start := range ready {
		out = append(out, Fired[T]{Start: start, End: start + size, Items: b.windows[start]})
		delete(b.windows, start)
		b.fired[start] = true
	}
	// Garbage-collect the fired set beyond the lateness horizon.
	for start := range b.fired {
		if start+size+b.lateness < watermark {
			delete(b.fired, start)
		}
	}
	return out
}

// Pending returns the number of open (unfired) windows.
func (b *Buffer[T]) Pending() int { return len(b.windows) }

// CountBuffer fires a window after every n elements (tumbling by count).
type CountBuffer[T any] struct {
	n     int
	items []T
}

// NewCountBuffer creates a count window of n elements; n must be positive.
func NewCountBuffer[T any](n int) *CountBuffer[T] {
	if n < 1 {
		panic(fmt.Sprintf("window: count window of %d", n))
	}
	return &CountBuffer[T]{n: n}
}

// Add appends v; when the window is full it returns the batch (and resets),
// otherwise nil.
func (b *CountBuffer[T]) Add(v T) []T {
	b.items = append(b.items, v)
	if len(b.items) < b.n {
		return nil
	}
	out := b.items
	b.items = make([]T, 0, b.n)
	return out
}

// Len returns the current fill.
func (b *CountBuffer[T]) Len() int { return len(b.items) }

// Watermark tracks event-time progress with bounded disorder: the
// watermark trails the maximum seen timestamp by the allowed skew.
type Watermark struct {
	skew int64
	max  int64
}

// NewWatermark allows elements to arrive up to skew out of order.
func NewWatermark(skew time.Duration) *Watermark {
	return &Watermark{skew: skew.Nanoseconds()}
}

// Observe feeds one event timestamp and returns the current watermark.
func (w *Watermark) Observe(ts int64) int64 {
	if ts > w.max {
		w.max = ts
	}
	return w.Current()
}

// Current returns max-seen minus the allowed skew.
func (w *Watermark) Current() int64 {
	if w.max == 0 {
		return 0
	}
	return w.max - w.skew
}
