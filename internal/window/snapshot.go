package window

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Checkpoint serialization for the windowing state (DESIGN §13). Only
// dynamic state is encoded — assigner/lateness/skew/count are operator
// configuration and are reconstructed by the operator itself. Element
// encoding is delegated to the caller (operators know their element type;
// the engine's stateful bolts use the pooled tuple encoder), keeping this
// package dependency-free.
//
// Encodings are deterministic: map iteration never leaks into the bytes
// (window starts and fired starts are sorted), so two tasks with equal
// state produce equal snapshots — the chaos soak relies on this to compare
// recovered runs byte-for-byte.

// AppendElem encodes one element of type T onto dst.
type AppendElem[T any] func(dst []byte, v T) []byte

// DecodeElem decodes one element of type T from buf, returning the element
// and the bytes consumed.
type DecodeElem[T any] func(buf []byte) (T, int, error)

var errSnapshotTruncated = fmt.Errorf("window: truncated snapshot")

// AppendSnapshot appends the buffer's dynamic state (open windows, fired
// set, late-drop counter) to dst using enc for elements.
func (b *Buffer[T]) AppendSnapshot(dst []byte, enc AppendElem[T]) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(b.DroppedLate))
	starts := make([]int64, 0, len(b.windows))
	for start := range b.windows {
		starts = append(starts, start)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(starts)))
	for _, start := range starts {
		items := b.windows[start]
		dst = binary.LittleEndian.AppendUint64(dst, uint64(start))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(len(items)))
		for _, v := range items {
			dst = enc(dst, v)
		}
	}
	fired := make([]int64, 0, len(b.fired))
	for start := range b.fired {
		fired = append(fired, start)
	}
	sort.Slice(fired, func(i, j int) bool { return fired[i] < fired[j] })
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(fired)))
	for _, start := range fired {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(start))
	}
	return dst
}

// RestoreSnapshot replaces the buffer's dynamic state with a snapshot
// produced by AppendSnapshot, decoding elements with dec. Configuration
// (assigner, lateness) is left untouched. A nil/empty buf resets the
// buffer to its initial empty state.
func (b *Buffer[T]) RestoreSnapshot(buf []byte, dec DecodeElem[T]) error {
	b.windows = map[int64][]T{}
	b.fired = map[int64]bool{}
	b.DroppedLate = 0
	if len(buf) == 0 {
		return nil
	}
	off := 0
	dropped, off, err := snapU64(buf, off)
	if err != nil {
		return err
	}
	b.DroppedLate = int64(dropped)
	nw, off, err := snapU32(buf, off)
	if err != nil {
		return err
	}
	for i := 0; i < int(nw); i++ {
		var start, ni uint64
		var n32 uint32
		start, off, err = snapU64(buf, off)
		if err != nil {
			return err
		}
		n32, off, err = snapU32(buf, off)
		if err != nil {
			return err
		}
		ni = uint64(n32)
		items := make([]T, 0, ni)
		for j := uint64(0); j < ni; j++ {
			v, n, err := dec(buf[off:])
			if err != nil {
				return err
			}
			items = append(items, v)
			off += n
		}
		b.windows[int64(start)] = items
	}
	nf, off, err := snapU32(buf, off)
	if err != nil {
		return err
	}
	for i := 0; i < int(nf); i++ {
		var start uint64
		start, off, err = snapU64(buf, off)
		if err != nil {
			return err
		}
		b.fired[int64(start)] = true
	}
	if off != len(buf) {
		return fmt.Errorf("window: %d trailing snapshot bytes", len(buf)-off)
	}
	return nil
}

// AppendSnapshot appends the count window's pending items to dst.
func (b *CountBuffer[T]) AppendSnapshot(dst []byte, enc AppendElem[T]) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(b.items)))
	for _, v := range b.items {
		dst = enc(dst, v)
	}
	return dst
}

// RestoreSnapshot replaces the count window's pending items with a
// snapshot produced by AppendSnapshot. A nil/empty buf empties the window.
func (b *CountBuffer[T]) RestoreSnapshot(buf []byte, dec DecodeElem[T]) error {
	b.items = b.items[:0]
	if len(buf) == 0 {
		return nil
	}
	n, off, err := snapU32(buf, 0)
	if err != nil {
		return err
	}
	for i := 0; i < int(n); i++ {
		v, used, err := dec(buf[off:])
		if err != nil {
			return err
		}
		b.items = append(b.items, v)
		off += used
	}
	if off != len(buf) {
		return fmt.Errorf("window: %d trailing snapshot bytes", len(buf)-off)
	}
	return nil
}

// AppendSnapshot appends the watermark's max-seen timestamp to dst.
func (w *Watermark) AppendSnapshot(dst []byte) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(w.max))
}

// RestoreSnapshot restores the max-seen timestamp. A nil/empty buf resets
// it.
func (w *Watermark) RestoreSnapshot(buf []byte) error {
	w.max = 0
	if len(buf) == 0 {
		return nil
	}
	v, _, err := snapU64(buf, 0)
	if err != nil {
		return err
	}
	w.max = int64(v)
	return nil
}

func snapU64(buf []byte, off int) (uint64, int, error) {
	if off+8 > len(buf) {
		return 0, off, errSnapshotTruncated
	}
	return binary.LittleEndian.Uint64(buf[off:]), off + 8, nil
}

func snapU32(buf []byte, off int) (uint32, int, error) {
	if off+4 > len(buf) {
		return 0, off, errSnapshotTruncated
	}
	return binary.LittleEndian.Uint32(buf[off:]), off + 4, nil
}
