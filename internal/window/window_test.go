package window

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestTumblingAssignment(t *testing.T) {
	w := Tumbling{Width: 10 * time.Nanosecond}
	cases := []struct{ ts, want int64 }{
		{0, 0}, {9, 0}, {10, 10}, {25, 20}, {-1, -10}, {-10, -10},
	}
	for _, c := range cases {
		got := w.Windows(c.ts)
		if len(got) != 1 || got[0] != c.want {
			t.Fatalf("Windows(%d) = %v, want [%d]", c.ts, got, c.want)
		}
	}
	if w.Size() != 10 {
		t.Fatalf("size %d", w.Size())
	}
}

func TestSlidingAssignment(t *testing.T) {
	w := Sliding{Width: 30 * time.Nanosecond, Slide: 10 * time.Nanosecond}
	got := w.Windows(25)
	want := []int64{0, 10, 20}
	if len(got) != 3 {
		t.Fatalf("Windows(25) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Windows(25) = %v, want %v", got, want)
		}
	}
	// Each element belongs to width/slide windows.
	if n := len(w.Windows(100)); n != 3 {
		t.Fatalf("element in %d windows, want 3", n)
	}
}

func TestSlidingInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Sliding{Width: 10, Slide: 20}.Windows(0)
}

func TestBufferTumblingFiring(t *testing.T) {
	b := NewBuffer[int](Tumbling{Width: 10}, 0)
	b.Add(1, 100)
	b.Add(5, 101)
	b.Add(12, 102)
	// Watermark at 9: nothing complete.
	if fired := b.Advance(9); len(fired) != 0 {
		t.Fatalf("early fire: %v", fired)
	}
	// Watermark at 10: window [0,10) fires with two items.
	fired := b.Advance(10)
	if len(fired) != 1 || fired[0].Start != 0 || fired[0].End != 10 {
		t.Fatalf("fired %v", fired)
	}
	if len(fired[0].Items) != 2 || fired[0].Items[0] != 100 || fired[0].Items[1] != 101 {
		t.Fatalf("items %v", fired[0].Items)
	}
	// The second window fires later.
	fired = b.Advance(30)
	if len(fired) != 1 || fired[0].Start != 10 || fired[0].Items[0] != 102 {
		t.Fatalf("second fire %v", fired)
	}
	if b.Pending() != 0 {
		t.Fatalf("pending %d", b.Pending())
	}
}

func TestBufferLateElements(t *testing.T) {
	b := NewBuffer[int](Tumbling{Width: 10}, 0)
	b.Add(5, 1)
	b.Advance(10) // [0,10) fired
	// A late element for the fired window is dropped and counted.
	b.Add(7, 2)
	if b.DroppedLate != 1 {
		t.Fatalf("dropped %d", b.DroppedLate)
	}
	// An element for an open window still lands.
	b.Add(15, 3)
	if b.DroppedLate != 1 || b.Pending() != 1 {
		t.Fatalf("dropped=%d pending=%d", b.DroppedLate, b.Pending())
	}
}

func TestBufferFiredSetGC(t *testing.T) {
	b := NewBuffer[int](Tumbling{Width: 10}, 20*time.Nanosecond)
	for ts := int64(0); ts < 200; ts += 10 {
		b.Add(ts, int(ts))
		b.Advance(ts + 10)
	}
	if len(b.fired) > 5 {
		t.Fatalf("fired set leaked: %d entries", len(b.fired))
	}
}

func TestBufferSlidingCoverage(t *testing.T) {
	// Every element must appear in exactly width/slide fired windows.
	b := NewBuffer[int64](Sliding{Width: 30, Slide: 10}, 0)
	const n = 50
	for i := int64(0); i < n; i++ {
		b.Add(i*7, i)
	}
	appearances := map[int64]int{}
	for _, f := range b.Advance(1 << 40) {
		for _, v := range f.Items {
			appearances[v]++
		}
	}
	for i := int64(0); i < n; i++ {
		if appearances[i] != 3 {
			t.Fatalf("element %d in %d windows, want 3", i, appearances[i])
		}
	}
}

func TestQuickTumblingPartition(t *testing.T) {
	// Tumbling windows partition the timeline: every ts is in exactly one
	// window, and that window contains it.
	f := func(raw int64, width uint16) bool {
		w := Tumbling{Width: time.Duration(int64(width%1000) + 1)}
		ws := w.Windows(raw)
		if len(ws) != 1 {
			return false
		}
		start := ws[0]
		return start <= raw && raw < start+w.Size() && mod(start, w.Size()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSlidingContainment(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		slide := int64(1 + r.Intn(100))
		k := int64(1 + r.Intn(5))
		w := Sliding{Width: time.Duration(slide * k), Slide: time.Duration(slide)}
		ts := r.Int63n(1 << 40)
		ws := w.Windows(ts)
		if int64(len(ws)) != k {
			t.Fatalf("ts in %d windows, want %d", len(ws), k)
		}
		for _, start := range ws {
			if !(start <= ts && ts < start+w.Size()) {
				t.Fatalf("window [%d,%d) does not contain %d", start, start+w.Size(), ts)
			}
		}
	}
}

func TestCountBuffer(t *testing.T) {
	b := NewCountBuffer[string](3)
	if out := b.Add("a"); out != nil {
		t.Fatal("fired early")
	}
	b.Add("b")
	out := b.Add("c")
	if len(out) != 3 || out[0] != "a" || out[2] != "c" {
		t.Fatalf("batch %v", out)
	}
	if b.Len() != 0 {
		t.Fatalf("len %d after fire", b.Len())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewCountBuffer[int](0)
	}()
}

func TestWatermarkSkew(t *testing.T) {
	w := NewWatermark(5 * time.Nanosecond)
	if w.Current() != 0 {
		t.Fatal("fresh watermark nonzero")
	}
	if got := w.Observe(100); got != 95 {
		t.Fatalf("watermark %d", got)
	}
	// Out-of-order observation does not regress.
	if got := w.Observe(90); got != 95 {
		t.Fatalf("watermark regressed to %d", got)
	}
	if got := w.Observe(200); got != 195 {
		t.Fatalf("watermark %d", got)
	}
}

// TestWindowedJoinScenario exercises the substrate end to end the way the
// ride-hailing join would: locations buffered in sliding windows, requests
// matched against the window contents at their timestamp.
func TestWindowedJoinScenario(t *testing.T) {
	type loc struct {
		driver string
		ts     int64
	}
	locs := NewBuffer[loc](Sliding{Width: 100, Slide: 25}, 0)
	// Driver A updates at t=10 (windows -75..0), driver B at t=90
	// (windows 0..75): they overlap only in window [0,100).
	locs.Add(10, loc{"A", 10})
	locs.Add(90, loc{"B", 90})
	fired := locs.Advance(300)
	byStart := map[int64][]loc{}
	for _, f := range fired {
		byStart[f.Start] = f.Items
	}
	if got := byStart[0]; len(got) != 2 {
		t.Fatalf("window 0: %v", got)
	}
	if got := byStart[-25]; len(got) != 1 || got[0].driver != "A" {
		t.Fatalf("window -25: %v", got)
	}
	if got := byStart[75]; len(got) != 1 || got[0].driver != "B" {
		t.Fatalf("window 75: %v", got)
	}
}
