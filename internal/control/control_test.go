package control

import (
	"math"
	"testing"

	"whale/internal/queueing"
)

func testConfig() Config {
	return Config{QueueCapacity: 1000, Waterline: 700, TDown: 0.5, TUp: 0.5, Alpha: 0.5, MaxDstar: 9}
}

// feed primes the controller with a steady rate and te so targetDstar is
// well-defined.
func feed(c *Controller, rate, te float64, rounds int) {
	for i := 0; i < rounds; i++ {
		c.ObserveRate(rate, 1)
		c.ObserveTe(te)
	}
}

func TestHoldOnFirstSample(t *testing.T) {
	c := NewController(testConfig(), 3)
	feed(c, 1000, 50e-6, 5)
	if d := c.Evaluate(100); d.Action != Hold {
		t.Fatalf("first evaluation must hold, got %v", d.Action)
	}
}

func TestNegativeScaleDownOnRapidRise(t *testing.T) {
	c := NewController(testConfig(), 9)
	// A very high input rate: d* target becomes small.
	feed(c, 200000, 50e-6, 10)
	c.Evaluate(100)
	// Queue jumps 100 -> 500: ΔL/(l_w - l) = 400/200 = 2 >= T_down.
	d := c.Evaluate(500)
	if d.Action != ScaleDown {
		t.Fatalf("want scale-down, got %v (λ=%g te=%g)", d.Action, d.Lambda, d.Te)
	}
	if d.NewDstar >= 9 || d.NewDstar < 1 {
		t.Fatalf("new d* %d not reduced", d.NewDstar)
	}
	if c.Dstar() != d.NewDstar {
		t.Fatal("controller did not adopt the new d*")
	}
	want := queueing.MaxOutDegree(200000, 50e-6, 1000)
	if d.NewDstar != want {
		t.Fatalf("new d* %d, queueing model says %d", d.NewDstar, want)
	}
}

func TestNoScaleDownOnSlowRise(t *testing.T) {
	c := NewController(testConfig(), 9)
	feed(c, 200000, 50e-6, 10)
	c.Evaluate(100)
	// Queue creeps 100 -> 110: ΔL/(l_w - l) = 10/590 << T_down.
	if d := c.Evaluate(110); d.Action != Hold {
		t.Fatalf("slow rise must hold, got %v", d.Action)
	}
}

func TestScaleDownWhenAboveWaterline(t *testing.T) {
	c := NewController(testConfig(), 9)
	feed(c, 200000, 50e-6, 10)
	c.Evaluate(699)
	// Crossing the waterline triggers even if the rise ratio is small.
	if d := c.Evaluate(701); d.Action != ScaleDown {
		t.Fatalf("crossing l_w must scale down, got %v", d.Action)
	}
}

func TestActiveScaleUpOnRapidFall(t *testing.T) {
	c := NewController(testConfig(), 1)
	// A light load: d* target is large.
	feed(c, 100, 50e-6, 10)
	c.Evaluate(600)
	// Queue drops 600 -> 100: ΔL/l' = 500/600 >= T_up.
	d := c.Evaluate(100)
	if d.Action != ScaleUp {
		t.Fatalf("want scale-up, got %v", d.Action)
	}
	if d.NewDstar <= 1 {
		t.Fatalf("new d* %d not increased", d.NewDstar)
	}
	if d.NewDstar > 9 {
		t.Fatalf("new d* %d exceeds MaxDstar", d.NewDstar)
	}
}

func TestScaleUpOnEmptyQueue(t *testing.T) {
	c := NewController(testConfig(), 1)
	feed(c, 100, 50e-6, 10)
	c.Evaluate(0)
	// l = l' = 0 is an explicit scale-up trigger.
	if d := c.Evaluate(0); d.Action != ScaleUp {
		t.Fatalf("idle queue must scale up, got %v", d.Action)
	}
}

func TestNoScaleUpOnSlowFall(t *testing.T) {
	c := NewController(testConfig(), 1)
	feed(c, 100, 50e-6, 10)
	c.Evaluate(600)
	if d := c.Evaluate(550); d.Action != Hold {
		t.Fatalf("slow fall must hold, got %v", d.Action)
	}
}

func TestRuleWithoutDstarChangeHolds(t *testing.T) {
	// The rise rule fires but the model still supports the current d*: hold.
	c := NewController(testConfig(), 3)
	lam, te := 1000.0, 50e-6
	// d* at this load is MaxDstar-clamped to 9 > 3, so a scale-DOWN trigger
	// must not shrink the tree.
	feed(c, lam, te, 10)
	c.Evaluate(100)
	if d := c.Evaluate(500); d.Action != Hold {
		t.Fatalf("scale-down trigger with roomy d* must hold, got %v (d*=%d)", d.Action, d.NewDstar)
	}
	if c.Dstar() != 3 {
		t.Fatalf("d* changed to %d", c.Dstar())
	}
}

func TestNoStatisticsMeansHold(t *testing.T) {
	c := NewController(testConfig(), 3)
	c.Evaluate(0)
	if d := c.Evaluate(0); d.Action != Hold {
		t.Fatalf("no λ/te statistics: hold, got %v", d.Action)
	}
}

func TestSmoothingUsesAlpha(t *testing.T) {
	c := NewController(testConfig(), 3)
	c.ObserveRate(1000, 1)
	c.ObserveRate(3000, 1)
	// α=0.5: λ = 0.5*1000 + 0.5*3000 = 2000.
	if math.Abs(c.Lambda()-2000) > 1e-9 {
		t.Fatalf("λ = %g, want 2000", c.Lambda())
	}
}

func TestForceDstar(t *testing.T) {
	c := NewController(testConfig(), 5)
	c.ForceDstar(3)
	if c.Dstar() != 3 {
		t.Fatalf("d* %d", c.Dstar())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("ForceDstar(0) must panic")
			}
		}()
		c.ForceDstar(0)
	}()
}

func TestDefaults(t *testing.T) {
	c := NewController(Config{}, 2)
	if c.cfg.QueueCapacity != 1024 || c.cfg.Waterline != 716 || c.cfg.MaxDstar != 64 {
		t.Fatalf("defaults: %+v", c.cfg)
	}
	if c.cfg.TDown != 0.5 || c.cfg.TUp != 0.5 || c.cfg.Alpha != 0.5 {
		t.Fatalf("defaults: %+v", c.cfg)
	}
}

func TestStreamMonitor(t *testing.T) {
	var m StreamMonitor
	m.Record(10)
	m.Record(5)
	if got := m.Drain(); got != 15 {
		t.Fatalf("drain %d", got)
	}
	if got := m.Drain(); got != 0 {
		t.Fatalf("second drain %d", got)
	}
}

func TestQueueMonitor(t *testing.T) {
	var m QueueMonitor
	m.RecordEmit(1000)
	m.RecordEmit(3000)
	m.RecordEmit(-5) // ignored
	te, ok := m.DrainTe()
	if !ok {
		t.Fatal("expected samples")
	}
	if math.Abs(te-2e-6) > 1e-12 {
		t.Fatalf("te = %g, want 2µs", te)
	}
	if _, ok := m.DrainTe(); ok {
		t.Fatal("drained monitor must be empty")
	}
}

func TestActionString(t *testing.T) {
	if Hold.String() != "hold" || ScaleDown.String() != "scale-down" || ScaleUp.String() != "scale-up" {
		t.Fatal("Action.String broken")
	}
}

// TestAdaptationScenario walks the controller through the paper's Fig. 23
// dynamic profile in miniature: rising input rate forces d* down, the lull
// afterwards lets it climb back.
func TestAdaptationScenario(t *testing.T) {
	cfg := testConfig()
	c := NewController(cfg, 9)
	te := 50e-6

	// Phase 1: low rate, empty queue. d* should stay high.
	for i := 0; i < 20; i++ {
		c.ObserveRate(1000, 1)
		c.ObserveTe(te)
		c.Evaluate(0)
	}
	if c.Dstar() != 9 {
		t.Fatalf("phase 1: d* = %d, want 9", c.Dstar())
	}

	// Phase 2: rate spike; queue climbs fast. d* must fall to the model's
	// value for the new rate.
	qlen := 0
	for i := 0; i < 20; i++ {
		c.ObserveRate(150000, 1)
		c.ObserveTe(te)
		qlen += 120
		if qlen > cfg.QueueCapacity {
			qlen = cfg.QueueCapacity
		}
		c.Evaluate(qlen)
	}
	downD := c.Dstar()
	if downD >= 9 {
		t.Fatalf("phase 2: d* = %d, want < 9", downD)
	}

	// Phase 3: rate falls back; queue drains. d* must recover.
	for i := 0; i < 30; i++ {
		c.ObserveRate(1000, 1)
		c.ObserveTe(te)
		qlen = qlen / 2
		c.Evaluate(qlen)
	}
	if c.Dstar() <= downD {
		t.Fatalf("phase 3: d* = %d did not recover above %d", c.Dstar(), downD)
	}
}

func TestMedianWindowSuppressesGlitches(t *testing.T) {
	cfg := testConfig()
	cfg.MedianWindow = 5
	c := NewController(cfg, 3)
	// Steady 1000/s with one wild outlier: the median filter must keep the
	// smoothed rate near 1000.
	for i := 0; i < 10; i++ {
		c.ObserveRate(1000, 1)
	}
	c.ObserveRate(1e9, 1) // glitch
	for i := 0; i < 3; i++ {
		c.ObserveRate(1000, 1)
	}
	if c.Lambda() > 2000 {
		t.Fatalf("glitch leaked through the median filter: λ=%g", c.Lambda())
	}
	// Without the filter the same glitch dominates.
	raw := NewController(testConfig(), 3)
	for i := 0; i < 10; i++ {
		raw.ObserveRate(1000, 1)
	}
	raw.ObserveRate(1e9, 1)
	if raw.Lambda() < 1e6 {
		t.Fatalf("control: expected unfiltered λ to spike, got %g", raw.Lambda())
	}
}

func TestMedianEvenWindow(t *testing.T) {
	cfg := testConfig()
	cfg.MedianWindow = 4
	c := NewController(cfg, 3)
	c.ObserveRate(100, 1)
	c.ObserveRate(200, 1)
	// Window [100 200]: median 150; EWMA(α=.5): 0.5*100+0.5*150 = 125.
	if math.Abs(c.Lambda()-125) > 1e-9 {
		t.Fatalf("λ=%g, want 125", c.Lambda())
	}
}

func TestScaleUpWorthwhile(t *testing.T) {
	// 29 destinations, d* 1 -> 3, te = 1µs: completion falls 29 -> 6 units,
	// so γ nearly quintuples. A 30k/s stream over a 5s horizon delivers
	// 4.35M times — far beyond the ~1.3M-delivery break-even of a 1ms
	// switch.
	if !ScaleUpWorthwhile(29, 1, 3, 1e-6, 30000, 1e-3, 5) {
		t.Fatal("clearly beneficial scale-up rejected")
	}
	// A glacial stream (1 tuple/s) cannot amortize the same switch within
	// the horizon.
	if ScaleUpWorthwhile(29, 1, 3, 1e-6, 1, 1e-3, 5) {
		t.Fatal("unamortizable scale-up accepted")
	}
	// Degenerate inputs.
	if ScaleUpWorthwhile(29, 3, 3, 1e-6, 1000, 1e-3, 1) {
		t.Fatal("non-increase accepted")
	}
	if ScaleUpWorthwhile(0, 1, 2, 1e-6, 1000, 1e-3, 1) {
		t.Fatal("empty group accepted")
	}
}
