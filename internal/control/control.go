// Package control implements Whale's queue-based self-adjusting mechanism
// (paper §3.3 and the statistics-monitoring module of §4): a StreamMonitor
// that measures the input rate λ with α-weighted smoothing, a QueueMonitor
// view of the transfer queue, and a Controller that applies the negative
// scale-down / active scale-up waterline rules and derives the new maximum
// out-degree d* from the M/D/1 model.
//
// The controller is deliberately passive: the caller (live engine or
// discrete-event simulation) feeds it observations at each monitoring
// interval Δt and acts on the returned Decision. This keeps the decision
// logic identical — and identically testable — in both runtimes.
package control

import (
	"fmt"
	"sort"
	"sync/atomic"

	"whale/internal/metrics"
	"whale/internal/queueing"
)

// Action is what the controller wants done to the multicast structure.
type Action int

const (
	// Hold keeps the current structure.
	Hold Action = iota
	// ScaleDown shrinks the source's out-degree (negative scale-down).
	ScaleDown
	// ScaleUp grows the source's out-degree (active scale-up).
	ScaleUp
)

func (a Action) String() string {
	switch a {
	case ScaleDown:
		return "scale-down"
	case ScaleUp:
		return "scale-up"
	}
	return "hold"
}

// Decision is the controller's verdict for one monitoring interval.
type Decision struct {
	Action Action
	// NewDstar is the maximum out-degree to adjust to (valid when Action is
	// not Hold).
	NewDstar int
	// Lambda and Te are the smoothed statistics the decision was based on,
	// for logging and tests.
	Lambda float64
	Te     float64
}

// Config parameterises the controller.
type Config struct {
	// QueueCapacity is Q, the transfer queue's maximum length.
	QueueCapacity int
	// Waterline is l_w, the warning waterline. Zero means 70% of Q.
	Waterline int
	// TDown is the negative scale-down threshold T_down on ΔL/(l_w - l).
	TDown float64
	// TUp is the active scale-up threshold T_up on ΔL/l'.
	TUp float64
	// Alpha is the smoothing weight for the input-rate EWMA (§4).
	Alpha float64
	// MedianWindow, when >= 3, pre-filters raw rate samples with a sliding
	// median before the EWMA — the paper's §4 "eliminate the noise,
	// message loss, and outliers" pre-processing. Zero disables it.
	MedianWindow int
	// MaxDstar caps d* (usually ceil(log2(n+1)); beyond that the tree is
	// already binomial and a larger cap changes nothing).
	MaxDstar int
}

// withDefaults fills zero fields with the values used throughout the paper
// reproduction.
func (c Config) withDefaults() Config {
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 1024
	}
	if c.Waterline <= 0 {
		c.Waterline = c.QueueCapacity * 7 / 10
	}
	if c.TDown <= 0 {
		c.TDown = 0.5
	}
	if c.TUp <= 0 {
		c.TUp = 0.5
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.5
	}
	if c.MaxDstar <= 0 {
		c.MaxDstar = 64
	}
	return c
}

// Controller applies the §3.3 rules. Not safe for concurrent use; the
// engine's monitor goroutine owns it.
type Controller struct {
	cfg      Config
	lambda   *metrics.EWMA
	te       *metrics.EWMA
	window   []float64 // sliding raw-rate window for the median filter
	prevLen  int
	havePrev bool
	curDstar int
}

// NewController returns a controller starting from the given d*.
func NewController(cfg Config, initialDstar int) *Controller {
	cfg = cfg.withDefaults()
	if initialDstar < 1 {
		panic(fmt.Sprintf("control: initial d* %d", initialDstar))
	}
	return &Controller{
		cfg:      cfg,
		lambda:   metrics.NewEWMA(cfg.Alpha),
		te:       metrics.NewEWMA(cfg.Alpha),
		curDstar: initialDstar,
	}
}

// Dstar returns the out-degree cap the controller currently targets.
func (c *Controller) Dstar() int { return c.curDstar }

// ObserveRate feeds the raw tuple count N(t) for one interval of length
// intervalSec, updating the smoothed input rate λ(t) = α·λ(t-1)+(1-α)·N(t)/Δt.
// With MedianWindow set, the raw rate first passes a sliding-median filter
// so isolated glitches (a dropped monitoring sample, a burst artefact)
// never reach the EWMA.
func (c *Controller) ObserveRate(count float64, intervalSec float64) {
	if intervalSec <= 0 {
		panic("control: non-positive interval")
	}
	rate := count / intervalSec
	if w := c.cfg.MedianWindow; w >= 3 {
		c.window = append(c.window, rate)
		if len(c.window) > w {
			c.window = c.window[1:]
		}
		rate = median(c.window)
	}
	c.lambda.Update(rate)
}

// median returns the median of xs (xs is not modified).
func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// ObserveTe feeds one measured per-replica processing time (seconds): the
// time to serialize, enqueue and post one replica on one RDMA channel.
func (c *Controller) ObserveTe(te float64) {
	if te > 0 {
		c.te.Update(te)
	}
}

// Lambda returns the smoothed input rate (tuples/s).
func (c *Controller) Lambda() float64 { return c.lambda.Value() }

// Te returns the smoothed per-replica processing time (seconds).
func (c *Controller) Te() float64 { return c.te.Value() }

// Evaluate applies the waterline rules to the queue length observed at the
// end of the current interval and returns a Decision. Rules (§3.3), with
// l' = previous length, l = current, l_w = waterline:
//
//   - negative scale-down: the queue grew (ΔL = l-l' > 0) and either l has
//     already reached l_w, or ΔL/(l_w - l) >= T_down;
//   - active scale-up: the queue shrank (ΔL = l'-l > 0) and ΔL/l' >= T_up,
//     or the queue stayed empty (l = l' = 0).
//
// A triggered rule only yields a non-Hold decision if the recomputed d*
// (Eq. 3/4 on the smoothed λ and t_e) actually moves in that direction;
// otherwise the structure is already right and the controller holds.
func (c *Controller) Evaluate(queueLen int) Decision {
	d := Decision{Action: Hold, NewDstar: c.curDstar, Lambda: c.lambda.Value(), Te: c.te.Value()}
	prev, had := c.prevLen, c.havePrev
	c.prevLen, c.havePrev = queueLen, true
	if !had {
		return d
	}
	lw := c.cfg.Waterline
	wantDown, wantUp := false, false
	switch {
	case queueLen > prev: // rising waterline
		dl := float64(queueLen - prev)
		if queueLen >= lw || dl/float64(lw-queueLen) >= c.cfg.TDown {
			wantDown = true
		}
	case queueLen < prev: // falling waterline
		dl := float64(prev - queueLen)
		if dl/float64(prev) >= c.cfg.TUp {
			wantUp = true
		}
	default:
		if queueLen == 0 {
			wantUp = true // l = l' = 0: idle queue, grow the tree
		}
	}
	if !wantDown && !wantUp {
		return d
	}
	target := c.targetDstar()
	if wantDown && target < c.curDstar {
		c.curDstar = target
		d.Action, d.NewDstar = ScaleDown, target
	} else if wantUp && target > c.curDstar {
		c.curDstar = target
		d.Action, d.NewDstar = ScaleUp, target
	}
	return d
}

// targetDstar computes d* from the smoothed statistics, clamped to
// [1, MaxDstar]. With no statistics yet it keeps the current value.
func (c *Controller) targetDstar() int {
	lam, te := c.lambda.Value(), c.te.Value()
	if lam <= 0 || te <= 0 {
		return c.curDstar
	}
	dt := queueing.MaxOutDegree(lam, te, float64(c.cfg.QueueCapacity))
	if dt < 1 {
		dt = 1
	}
	if dt > c.cfg.MaxDstar {
		dt = c.cfg.MaxDstar
	}
	return dt
}

// ForceDstar overrides the controller's current target (used when the
// engine clamps d* for an experiment, e.g. the fixed d*=3 of Figs. 21-22).
func (c *Controller) ForceDstar(d int) {
	if d < 1 {
		panic(fmt.Sprintf("control: ForceDstar(%d)", d))
	}
	c.curDstar = d
}

// StreamMonitor counts arriving tuples; the engine's monitor goroutine
// drains it once per interval and feeds the count to the controller. Safe
// for concurrent producers.
type StreamMonitor struct {
	count atomic.Int64
}

// Record notes n arriving tuples.
func (m *StreamMonitor) Record(n int64) { m.count.Add(n) }

// Drain returns the count accumulated since the previous Drain and resets it.
func (m *StreamMonitor) Drain() int64 { return m.count.Swap(0) }

// QueueMonitor tracks per-replica emit times to estimate t_e, and exposes
// queue-length history. Safe for a single producer (the send thread) and a
// single consumer (the monitor goroutine).
type QueueMonitor struct {
	teSumNS atomic.Int64
	teCount atomic.Int64
}

// RecordEmit notes that one replica took d nanoseconds of send-side
// processing (serialize + enqueue + post).
func (m *QueueMonitor) RecordEmit(dNS int64) {
	if dNS <= 0 {
		return
	}
	m.teSumNS.Add(dNS)
	m.teCount.Add(1)
}

// DrainTe returns the mean per-replica processing time (seconds) observed
// since the last drain, and whether any samples existed.
func (m *QueueMonitor) DrainTe() (float64, bool) {
	n := m.teCount.Swap(0)
	sum := m.teSumNS.Swap(0)
	if n == 0 {
		return 0, false
	}
	return float64(sum) / float64(n) / 1e9, true
}

// ScaleUpWorthwhile applies the Theorem 5 guard to a proposed active
// scale-up: the switch pays off only if the tuples expected before the
// next opportunity to reconsider (λ·horizon) exceed the break-even count
// X > γ·γ'·T_switch/(γ−γ'), where the multicast rates before and after
// are estimated from the tree completion times: γ(d) = n/(C(n,d)·t_e)
// destinations per second.
// Both X and the γs are measured in destination deliveries: a stream of λ
// tuples/s to n destinations delivers λ·n per second.
func ScaleUpWorthwhile(n, dOld, dNew int, te, lambda, tswitchSec, horizonSec float64) bool {
	if dNew <= dOld || n <= 0 || te <= 0 || lambda <= 0 {
		return false
	}
	gammaOld := float64(n) / (float64(queueing.CompletionTime(n, dOld)) * te)
	gammaNew := float64(n) / (float64(queueing.CompletionTime(n, dNew)) * te)
	breakEven := queueing.MinTuplesForScaleUp(gammaNew, gammaOld, tswitchSec)
	return lambda*float64(n)*horizonSec > breakEven
}
