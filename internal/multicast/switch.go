package multicast

import "fmt"

// Move records one reconnection performed by a dynamic switch: Node
// disconnects from OldParent and reconnects to NewParent. A Move maps 1:1 to
// a CtrlReconnect control message.
type Move struct {
	Node      NodeID
	OldParent NodeID
	NewParent NodeID
}

// Direction of a dynamic switch.
type Direction int

const (
	// NoSwitch means the tree already satisfies the new d*.
	NoSwitch Direction = iota
	// ScaleDownSwitch is the negative scale-down of §3.3/§3.4 (d* shrank).
	ScaleDownSwitch
	// ScaleUpSwitch is the active scale-up of §3.3/§3.4 (d* grew).
	ScaleUpSwitch
)

func (d Direction) String() string {
	switch d {
	case ScaleDownSwitch:
		return "scale-down"
	case ScaleUpSwitch:
		return "scale-up"
	}
	return "none"
}

// ScaleDown restructures t in place so no out-degree exceeds newDstar,
// following the negative scale-down algorithm of §3.4: traverse from the
// source layer by layer; for every node whose out-degree exceeds d*, detach
// the subtrees that lead it to exceed d* (its latest-connected children),
// then re-insert each marked subtree under the first node in BFS order with
// spare out-degree. The returned moves are the reconnections performed, in
// order. It panics if newDstar < 1.
func ScaleDown(t *Tree, newDstar int) []Move {
	if newDstar < 1 {
		panic(fmt.Sprintf("multicast: ScaleDown to d*=%d", newDstar))
	}
	var moves []Move
	for {
		// Find the first violating node in BFS order.
		var victim NodeID = None
		for _, n := range t.bfsOrder() {
			if len(t.children[n]) > newDstar {
				victim = n
				break
			}
		}
		if victim == None {
			break
		}
		// Mark the subtree that leads victim to exceed d*: its last child.
		cs := t.children[victim]
		marked := cs[len(cs)-1]
		sub := t.subtreeNodes(marked)
		// Search from S for a suitable insertion position outside the
		// marked subtree.
		var pos NodeID = None
		for _, n := range t.bfsOrder() {
			if !sub[n] && len(t.children[n]) < newDstar {
				pos = n
				break
			}
		}
		if pos == None {
			// Cannot happen for newDstar >= 1: the tree always has a node
			// with spare capacity outside any proper subtree (see tests).
			panic("multicast: ScaleDown found no insertion position")
		}
		t.detach(marked)
		t.reattach(marked, pos)
		moves = append(moves, Move{Node: marked, OldParent: victim, NewParent: pos})
	}
	return moves
}

// ScaleUp restructures t in place to exploit a larger newDstar, following
// the active scale-up algorithm of §3.4: repeatedly take the node that
// receives tuples last (the deepest position, traversing "from the last
// destination instance to S") and move it under the first BFS-order node
// with out-degree below d* — provided that actually delivers the tuple
// earlier. The procedure ends when the rescheduled instance's original and
// new positions fall on the same logical layer (no further improvement).
func ScaleUp(t *Tree, newDstar int) []Move {
	if newDstar < 1 {
		panic(fmt.Sprintf("multicast: ScaleUp to d*=%d", newDstar))
	}
	var moves []Move
	for {
		rt := t.ReceiveTimes()
		// The deepest node; break receive-time ties toward the
		// latest-attached destination, matching the paper's traversal from
		// the last destination instance.
		var deepest NodeID = None
		deepestTime := -1
		for i := len(t.attached) - 1; i >= 0; i-- {
			n := t.attached[i]
			if rt[n] > deepestTime {
				deepest, deepestTime = n, rt[n]
			}
		}
		if deepest == None {
			break
		}
		sub := t.subtreeNodes(deepest)
		// Search from S for the insertion position that delivers earliest;
		// attaching as n's next child delivers at rt[n]+outdeg(n)+1. Ties go
		// to the earliest node in BFS order (closest to S, as in Fig. 8b).
		var pos NodeID = None
		bestTime := deepestTime
		for _, n := range t.bfsOrder() {
			if sub[n] || len(t.children[n]) >= newDstar {
				continue
			}
			candTime := rt[n] + len(t.children[n]) + 1
			if candTime < bestTime {
				pos, bestTime = n, candTime
			}
		}
		if pos == None {
			// The deepest destination cannot be delivered any earlier: its
			// original and best new position are on the same logical layer,
			// so the procedure ends (§3.4).
			break
		}
		old := t.parent[deepest]
		t.detach(deepest)
		t.reattach(deepest, pos)
		moves = append(moves, Move{Node: deepest, OldParent: old, NewParent: pos})
	}
	return moves
}

// Switch adjusts t for a new maximum out-degree, dispatching to ScaleDown
// or ScaleUp, and reports which direction was taken along with the moves.
// curDstar is the cap the tree was last adjusted for.
func Switch(t *Tree, curDstar, newDstar int) (Direction, []Move) {
	switch {
	case newDstar < curDstar:
		moves := ScaleDown(t, newDstar)
		if len(moves) == 0 {
			return NoSwitch, nil
		}
		return ScaleDownSwitch, moves
	case newDstar > curDstar:
		moves := ScaleUp(t, newDstar)
		if len(moves) == 0 {
			return NoSwitch, nil
		}
		return ScaleUpSwitch, moves
	default:
		return NoSwitch, nil
	}
}
