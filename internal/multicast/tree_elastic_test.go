package multicast

import (
	"reflect"
	"testing"
)

// TestAddNodePlacement: AddNode attaches under the BFS-shallowest node with
// spare capacity and preserves the d* cap — the growth dual of RemoveNode's
// orphan repair.
func TestAddNodePlacement(t *testing.T) {
	tr := BuildNonBlocking(0, seq(7), 2)
	if err := tr.AddNode(8, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(2); err != nil {
		t.Fatal(err)
	}
	if !tr.Contains(8) {
		t.Fatal("added node missing")
	}
	// With d*=2 the 7-node Fig. 6 tree has its first spare slot below the
	// source's subtree, never at the source (already at cap).
	if tr.Parent(8) == 0 && tr.OutDegree(0) > 2 {
		t.Fatalf("source over cap after AddNode: %d", tr.OutDegree(0))
	}
	// Growing one node at a time up to 31 keeps the cap at every step.
	for n := NodeID(9); n <= 31; n++ {
		if err := tr.AddNode(n, 2); err != nil {
			t.Fatal(err)
		}
		if err := tr.Validate(2); err != nil {
			t.Fatalf("after adding %d: %v", n, err)
		}
	}
}

func TestAddNodeDuplicateRejected(t *testing.T) {
	tr := BuildNonBlocking(0, seq(4), 2)
	if err := tr.AddNode(3, 2); err == nil {
		t.Fatal("AddNode accepted a node already in the tree")
	}
	if err := tr.AddNode(0, 2); err == nil {
		t.Fatal("AddNode accepted the source")
	}
	if err := tr.Validate(2); err != nil {
		t.Fatalf("failed AddNode mutated the tree: %v", err)
	}
}

// TestRemoveThenReaddIdentityReuse is the detach-then-reattach regression
// test: removing a node (leaf or interior) and re-adding the same NodeID
// must produce a fully consistent tree — no stale children list, no
// duplicate attached entry, no resurrected subtree links from the node's
// previous life.
func TestRemoveThenReaddIdentityReuse(t *testing.T) {
	for _, victim := range []NodeID{1, 2, 7} { // interior (1,2) and leaf (7)
		tr := BuildNonBlocking(0, seq(7), 2)
		hadChildren := append([]NodeID(nil), tr.Children(victim)...)
		if err := tr.RemoveNode(victim, 2); err != nil {
			t.Fatal(err)
		}
		if tr.Contains(victim) {
			t.Fatalf("node %d still present after RemoveNode", victim)
		}
		if err := tr.Validate(2); err != nil {
			t.Fatalf("after removing %d: %v", victim, err)
		}
		if err := tr.AddNode(victim, 2); err != nil {
			t.Fatalf("re-adding %d: %v", victim, err)
		}
		if err := tr.Validate(2); err != nil {
			t.Fatalf("after re-adding %d: %v", victim, err)
		}
		// The re-added identity must come back as a fresh leaf: its former
		// children were re-parented by the removal and must not snap back.
		if got := tr.Children(victim); len(got) != 0 {
			t.Fatalf("re-added node %d resurrected children %v (had %v)", victim, got, hadChildren)
		}
		// Exactly one attached entry for the reused id.
		count := 0
		for _, d := range tr.attached {
			if d == victim {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("node %d has %d attached entries after re-add, want 1", victim, count)
		}
		// A flatten/rebuild round-trip (what the ack'd switch distributes)
		// must survive the identity reuse.
		nodes, parents := tr.Flatten()
		rt, err := FromFlat(nodes, parents)
		if err != nil {
			t.Fatalf("FromFlat after identity reuse: %v", err)
		}
		if !reflect.DeepEqual(rt.ReceiveTimes(), tr.ReceiveTimes()) {
			t.Fatal("round-tripped tree diverges after identity reuse")
		}
	}
}

// TestRemoveReaddChurn soaks repeated remove/re-add cycles of rotating
// victims: any stale parent/children/attached entry left by one cycle
// would trip Validate (or panic attach) in a later one.
func TestRemoveReaddChurn(t *testing.T) {
	tr := BuildNonBlocking(0, seq(10), 3)
	for i := 0; i < 50; i++ {
		victim := NodeID(i%10 + 1)
		if err := tr.RemoveNode(victim, 3); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := tr.AddNode(victim, 3); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := tr.Validate(3); err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
	}
	if tr.Size() != 10 {
		t.Fatalf("size %d after churn, want 10", tr.Size())
	}
}
