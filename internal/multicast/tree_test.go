package multicast

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"whale/internal/queueing"
)

func seq(n int) []NodeID {
	out := make([]NodeID, n)
	for i := range out {
		out[i] = NodeID(i + 1)
	}
	return out
}

func TestBuildNonBlockingFig6(t *testing.T) {
	// Paper Fig. 6: |T| = 7, d* = 2. Expected receive schedule:
	// t1: 1 node, t2: 2 nodes, t3: 3 nodes, t4: 1 node.
	tr := BuildNonBlocking(0, seq(7), 2)
	if err := tr.Validate(2); err != nil {
		t.Fatal(err)
	}
	rt := tr.ReceiveTimes()
	byTime := map[int]int{}
	for n, r := range rt {
		if n != 0 {
			byTime[r]++
		}
	}
	want := map[int]int{1: 1, 2: 2, 3: 3, 4: 1}
	if !reflect.DeepEqual(byTime, want) {
		t.Fatalf("schedule %v, want %v (tree %v)", byTime, want, tr)
	}
	// The source's out-degree is capped at 2.
	if tr.OutDegree(0) != 2 {
		t.Fatalf("source out-degree %d, want 2", tr.OutDegree(0))
	}
	if tr.Depth() != 4 {
		t.Fatalf("depth %d, want 4", tr.Depth())
	}
}

func TestBuildBinomialDepth(t *testing.T) {
	// A binomial tree over n destinations completes at ceil(log2(n+1)).
	for _, n := range []int{1, 2, 3, 7, 15, 31, 100, 480} {
		tr := BuildBinomial(0, seq(n))
		if err := tr.Validate(0); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := queueing.BinomialSourceDegree(n)
		if tr.Depth() != want {
			t.Fatalf("n=%d: depth %d, want %d", n, tr.Depth(), want)
		}
		if tr.OutDegree(0) != want {
			t.Fatalf("n=%d: source degree %d, want %d", n, tr.OutDegree(0), want)
		}
	}
}

func TestBuildSequentialSchedule(t *testing.T) {
	tr := BuildSequential(0, seq(5))
	if err := tr.Validate(0); err != nil {
		t.Fatal(err)
	}
	rt := tr.ReceiveTimes()
	for i := 1; i <= 5; i++ {
		if rt[NodeID(i)] != i {
			t.Fatalf("dest %d receives at %d, want %d", i, rt[NodeID(i)], i)
		}
	}
	if tr.Depth() != 5 {
		t.Fatalf("depth %d, want 5", tr.Depth())
	}
	if tr.OutDegree(0) != 5 {
		t.Fatalf("source degree %d, want 5", tr.OutDegree(0))
	}
}

func TestSourceDegreeMatchesQueueingModel(t *testing.T) {
	// §3.2.2: d0 = min{d*, ceil(log2(n+1))}.
	for _, n := range []int{1, 7, 30, 120, 480} {
		for dstar := 1; dstar <= 12; dstar++ {
			tr := BuildNonBlocking(0, seq(n), dstar)
			if got, want := tr.OutDegree(0), queueing.SourceDegree(n, dstar); got != want {
				t.Fatalf("n=%d d*=%d: source degree %d, want %d", n, dstar, got, want)
			}
		}
	}
}

func TestDepthMatchesCapabilityModel(t *testing.T) {
	// The constructed tree's completion time must equal the analytic
	// CompletionTime from the L(t) recurrence (Theorem 2).
	for _, n := range []int{1, 3, 7, 16, 100, 480} {
		for dstar := 1; dstar <= 10; dstar++ {
			tr := BuildNonBlocking(0, seq(n), dstar)
			if got, want := tr.Depth(), queueing.CompletionTime(n, dstar); got != want {
				t.Fatalf("n=%d d*=%d: tree depth %d, capability model %d", n, dstar, got, want)
			}
		}
	}
}

func TestCoverageMatchesCapabilitySequence(t *testing.T) {
	// The number of nodes holding the tuple by time t in the built tree
	// must equal L(t) from Eqs. 6-7.
	const n, dstar = 100, 3
	tr := BuildNonBlocking(0, seq(n), dstar)
	rt := tr.ReceiveTimes()
	l := queueing.Capability(n, dstar, n+1)
	for tt := 0; tt < len(l); tt++ {
		cnt := int64(0)
		for _, r := range rt {
			if r <= tt {
				cnt++
			}
		}
		if cnt != l[tt] {
			t.Fatalf("t=%d: tree covers %d, L(t)=%d", tt, cnt, l[tt])
		}
	}
}

func TestMeanReceiveTimeOrdering(t *testing.T) {
	// Non-blocking with a reasonable d* beats sequential; binomial beats
	// both on mean receive time (it is the uncapped optimum).
	n := 480
	seqTr := BuildSequential(0, seq(n))
	nb := BuildNonBlocking(0, seq(n), 3)
	bin := BuildBinomial(0, seq(n))
	if !(bin.MeanReceiveTime() <= nb.MeanReceiveTime()) {
		t.Fatalf("binomial mean %f > nonblocking %f", bin.MeanReceiveTime(), nb.MeanReceiveTime())
	}
	if !(nb.MeanReceiveTime() < seqTr.MeanReceiveTime()) {
		t.Fatalf("nonblocking mean %f >= sequential %f", nb.MeanReceiveTime(), seqTr.MeanReceiveTime())
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := BuildNonBlocking(0, seq(7), 2)
	// Degree violation.
	if err := tr.Validate(1); err == nil {
		t.Fatal("Validate(1) passed a tree with out-degree 2")
	}
	// Broken parent pointer.
	c := tr.Clone()
	c.parent[3] = 99
	if err := c.Validate(0); err == nil {
		t.Fatal("Validate missed broken parent pointer")
	}
	// Orphan node.
	c2 := tr.Clone()
	c2.parent[99] = 98
	if err := c2.Validate(0); err == nil {
		t.Fatal("Validate missed unreachable node")
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	for _, build := range []func() *Tree{
		func() *Tree { return BuildNonBlocking(10, []NodeID{20, 30, 40, 50, 60}, 2) },
		func() *Tree { return BuildBinomial(0, seq(31)) },
		func() *Tree { return BuildSequential(5, seq(4)) },
		func() *Tree { return NewTree(3) },
	} {
		in := build()
		nodes, parents := in.Flatten()
		out, err := FromFlat(nodes, parents)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Validate(0); err != nil {
			t.Fatal(err)
		}
		if out.Size() != in.Size() || out.Source() != in.Source() {
			t.Fatalf("round trip mismatch: %v vs %v", in, out)
		}
		// Child order (the forwarding schedule) must survive.
		inRT, outRT := in.ReceiveTimes(), out.ReceiveTimes()
		for n, r := range inRT {
			if outRT[n] != r {
				t.Fatalf("node %d receive time %d -> %d after round trip", n, r, outRT[n])
			}
		}
	}
}

func TestFromFlatRejectsGarbage(t *testing.T) {
	cases := []struct {
		nodes, parents []int32
	}{
		{[]int32{0, 1}, []int32{-1}},          // length mismatch
		{nil, nil},                            // empty
		{[]int32{0, 1}, []int32{5, 0}},        // source with a parent
		{[]int32{0, 1, 1}, []int32{-1, 0, 0}}, // duplicate node
		{[]int32{0, 1}, []int32{-1, 7}},       // unknown parent
	}
	for i, c := range cases {
		if _, err := FromFlat(c.nodes, c.parents); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := BuildNonBlocking(0, seq(7), 2)
	c := tr.Clone()
	ScaleDown(c, 1)
	if err := tr.Validate(2); err != nil {
		t.Fatalf("mutating clone corrupted original: %v", err)
	}
	if tr.MaxOutDegree() != 2 {
		t.Fatalf("original max degree changed to %d", tr.MaxOutDegree())
	}
}

func TestQuickBuildInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r.Seed(seed)
		n := r.Intn(600)
		dstar := 1 + r.Intn(10)
		tr := BuildNonBlocking(0, seq(n), dstar)
		if err := tr.Validate(dstar); err != nil {
			t.Logf("n=%d d*=%d: %v", n, dstar, err)
			return false
		}
		return tr.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBuildersPanicOnBadInput(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("BuildNonBlocking(d*=0) did not panic")
			}
		}()
		BuildNonBlocking(0, seq(3), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("duplicate destination did not panic")
			}
		}()
		BuildNonBlocking(0, []NodeID{1, 1}, 2)
	}()
}

func TestEmptyTree(t *testing.T) {
	tr := NewTree(0)
	if err := tr.Validate(5); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 0 || tr.MeanReceiveTime() != 0 || tr.Size() != 0 {
		t.Fatal("empty tree has nonzero metrics")
	}
}

func TestRemoveNodeLeaf(t *testing.T) {
	tr := BuildNonBlocking(0, seq(7), 2)
	leaf := NodeID(0)
	for _, n := range tr.Nodes() {
		if n != 0 && tr.OutDegree(n) == 0 {
			leaf = n
			break
		}
	}
	if leaf == 0 {
		t.Fatal("no leaf found")
	}
	if err := tr.RemoveNode(leaf, 2); err != nil {
		t.Fatal(err)
	}
	if tr.Contains(leaf) {
		t.Fatalf("removed leaf %d still present", leaf)
	}
	if tr.Size() != 6 {
		t.Fatalf("size %d, want 6", tr.Size())
	}
	if err := tr.Validate(2); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveNodeReparentsOrphanedSubtree(t *testing.T) {
	// d* = 2 over 4 destinations: 0:[1,2], 1:[3,4]. Removing interior node
	// 1 orphans {3,4}; BFS-shallowest placement puts 3 under the source's
	// spare slot and 4 under node 2.
	tr := BuildNonBlocking(0, seq(4), 2)
	if err := tr.RemoveNode(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(2); err != nil {
		t.Fatal(err)
	}
	if tr.Contains(1) {
		t.Fatal("removed node 1 still present")
	}
	if got := tr.Children(0); !reflect.DeepEqual(got, []NodeID{2, 3}) {
		t.Fatalf("source children %v, want [2 3]", got)
	}
	if got := tr.Children(2); !reflect.DeepEqual(got, []NodeID{4}) {
		t.Fatalf("children of 2 = %v, want [4]", got)
	}
}

func TestRemoveNodeErrors(t *testing.T) {
	tr := BuildNonBlocking(0, seq(3), 2)
	if err := tr.RemoveNode(0, 2); err == nil {
		t.Fatal("removing the source accepted")
	}
	if err := tr.RemoveNode(99, 2); err == nil {
		t.Fatal("removing an absent node accepted")
	}
	if err := tr.Validate(2); err != nil {
		t.Fatalf("failed removals mutated the tree: %v", err)
	}
}

func TestRemoveNodeQuick(t *testing.T) {
	// Removing any destination from any tree keeps every survivor, the d*
	// cap, and all structural invariants.
	f := func(nRaw, dRaw uint8, pick uint8) bool {
		n := int(nRaw%30) + 2
		dstar := int(dRaw%4) + 1
		victim := NodeID(int(pick)%n + 1)
		tr := BuildNonBlocking(0, seq(n), dstar)
		if err := tr.RemoveNode(victim, dstar); err != nil {
			return false
		}
		if tr.Contains(victim) || tr.Size() != n-1 {
			return false
		}
		for i := 1; i <= n; i++ {
			if NodeID(i) != victim && !tr.Contains(NodeID(i)) {
				return false
			}
		}
		return tr.Validate(dstar) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
