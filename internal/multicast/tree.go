// Package multicast implements Whale's relay-based stream multicast
// structures (paper §3.2): the self-adjusting non-blocking multicast tree
// built by Algorithm 1, the static binomial tree used by RDMC, and the
// sequential (star) structure used by stock Storm, together with the dynamic
// switching algorithms of §3.4 (negative scale-down and active scale-up).
//
// Nodes are opaque int32 ids; in Whale's worker-oriented mode they are
// worker ids, in instance-oriented mode they are task ids. The tree's edges
// are RDMA channels: a node relays every tuple it receives to its children,
// one child per "time unit" (the per-hop replica processing time t_e), which
// is why a child's position among its siblings determines when it receives
// a tuple (ReceiveTimes).
package multicast

import (
	"fmt"
	"sort"
)

// NodeID identifies a participant (worker or task) in a multicast group.
type NodeID = int32

// None is the nil NodeID (the source's parent).
const None NodeID = -1

// Tree is a rooted multicast relay tree. The order of a node's children is
// significant: it is the order in which the node forwards each tuple, so it
// fixes the pipelined delivery schedule.
type Tree struct {
	source   NodeID
	parent   map[NodeID]NodeID
	children map[NodeID][]NodeID
	attached []NodeID // destinations in attachment (BFS) order
}

// NewTree returns a tree containing only the source.
func NewTree(source NodeID) *Tree {
	return &Tree{
		source:   source,
		parent:   map[NodeID]NodeID{source: None},
		children: map[NodeID][]NodeID{},
	}
}

// BuildNonBlocking constructs the non-blocking multicast tree of Algorithm 1:
// a binomial tree whose out-degree is capped at dstar. Destinations are
// attached in the given order. It panics if dstar < 1 or dests contains the
// source or duplicates (programming errors at this layer; the engine
// validates user input earlier).
func BuildNonBlocking(source NodeID, dests []NodeID, dstar int) *Tree {
	if dstar < 1 {
		panic(fmt.Sprintf("multicast: BuildNonBlocking with d*=%d", dstar))
	}
	t := NewTree(source)
	next := 0
	// list is the attachment-order node list of Algorithm 1; in each round
	// every listed node with out-degree < d* connects one new destination.
	list := []NodeID{source}
	for next < len(dests) {
		size := len(list)
		progressed := false
		for i := 0; i < size && next < len(dests); i++ {
			n := list[i]
			if len(t.children[n]) < dstar {
				d := dests[next]
				next++
				t.attach(d, n)
				list = append(list, d)
				progressed = true
			}
		}
		if !progressed {
			// Cannot happen for dstar >= 1 (the newest leaf always has
			// out-degree 0), but guard against an infinite loop.
			panic("multicast: Algorithm 1 made no progress")
		}
	}
	return t
}

// BuildBinomial constructs the unrestricted binomial multicast tree used by
// RDMC: Algorithm 1 with no out-degree cap.
func BuildBinomial(source NodeID, dests []NodeID) *Tree {
	return BuildNonBlocking(source, dests, len(dests)+1)
}

// BuildSequential constructs the star structure of stock Storm's sequential
// transmission: every destination is a direct child of the source, so the
// i-th destination receives each tuple at time unit i.
func BuildSequential(source NodeID, dests []NodeID) *Tree {
	t := NewTree(source)
	for _, d := range dests {
		t.attach(d, source)
	}
	return t
}

func (t *Tree) attach(n, parent NodeID) {
	if _, dup := t.parent[n]; dup {
		panic(fmt.Sprintf("multicast: node %d attached twice", n))
	}
	t.parent[n] = parent
	t.children[parent] = append(t.children[parent], n)
	t.attached = append(t.attached, n)
}

// Source returns the tree's root.
func (t *Tree) Source() NodeID { return t.source }

// Size returns the number of destinations (excluding the source).
func (t *Tree) Size() int { return len(t.parent) - 1 }

// Contains reports whether n is in the tree (source included).
func (t *Tree) Contains(n NodeID) bool {
	_, ok := t.parent[n]
	return ok
}

// Parent returns n's parent, or None for the source. It panics if n is not
// in the tree.
func (t *Tree) Parent(n NodeID) NodeID {
	p, ok := t.parent[n]
	if !ok {
		panic(fmt.Sprintf("multicast: node %d not in tree", n))
	}
	return p
}

// Children returns n's children in forwarding order. The returned slice is
// owned by the tree; callers must not mutate it.
func (t *Tree) Children(n NodeID) []NodeID { return t.children[n] }

// OutDegree returns the number of children of n.
func (t *Tree) OutDegree(n NodeID) int { return len(t.children[n]) }

// MaxOutDegree returns the largest out-degree in the tree.
func (t *Tree) MaxOutDegree() int {
	max := 0
	for _, c := range t.children {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// Destinations returns the destination nodes in attachment order. The
// returned slice is owned by the tree.
func (t *Tree) Destinations() []NodeID { return t.attached }

// Nodes returns all nodes (source first, then destinations in attachment
// order) as a fresh slice.
func (t *Tree) Nodes() []NodeID {
	out := make([]NodeID, 0, len(t.parent))
	out = append(out, t.source)
	out = append(out, t.attached...)
	return out
}

// ReceiveTimes returns, for every node, the time unit at which it receives a
// tuple under the pipelined relay schedule: the source holds the tuple at 0,
// and the i-th child (1-based) of a node that received at time r receives at
// r+i (each node forwards to one child per time unit, in child order).
func (t *Tree) ReceiveTimes() map[NodeID]int {
	rt := make(map[NodeID]int, len(t.parent))
	rt[t.source] = 0
	// BFS in attachment order guarantees parents are computed before
	// children only if parents attach earlier — true for Algorithm 1 trees,
	// but switching can reorder, so walk top-down explicitly.
	var walk func(n NodeID)
	walk = func(n NodeID) {
		base := rt[n]
		for i, c := range t.children[n] {
			rt[c] = base + i + 1
			walk(c)
		}
	}
	walk(t.source)
	return rt
}

// Depth returns the completion time of one tuple's multicast: the maximum
// receive time over all destinations (0 for an empty tree).
func (t *Tree) Depth() int {
	max := 0
	for _, r := range t.ReceiveTimes() {
		if r > max {
			max = r
		}
	}
	return max
}

// DepthOf returns the number of tree edges between the source and n: 0
// for the source itself, -1 when n is not in the tree. The tracer stamps
// it on hop spans so an exported trace shows how deep in the tree each
// relay sat.
func (t *Tree) DepthOf(n NodeID) int {
	if n == t.source {
		return 0
	}
	d := 0
	for n != t.source {
		p, ok := t.parent[n]
		if !ok || p == None {
			return -1
		}
		n = p
		d++
		if d > len(t.parent)+1 { // cycle guard: never trust a wire-installed tree
			return -1
		}
	}
	return d
}

// MeanReceiveTime returns the average receive time over destinations, i.e.
// the average multicast latency in time units (0 for an empty tree).
func (t *Tree) MeanReceiveTime() float64 {
	if t.Size() == 0 {
		return 0
	}
	sum := 0
	for n, r := range t.ReceiveTimes() {
		if n != t.source {
			sum += r
		}
	}
	return float64(sum) / float64(t.Size())
}

// Validate checks structural invariants: every node except the source has
// exactly one parent that lists it as a child, the tree is acyclic and fully
// reachable from the source, and no out-degree exceeds dstar (pass a
// non-positive dstar to skip the degree check).
func (t *Tree) Validate(dstar int) error {
	if t.parent[t.source] != None {
		return fmt.Errorf("multicast: source %d has parent %d", t.source, t.parent[t.source])
	}
	seen := map[NodeID]bool{}
	var walk func(n NodeID) error
	walk = func(n NodeID) error {
		if seen[n] {
			return fmt.Errorf("multicast: node %d reached twice (cycle or double link)", n)
		}
		seen[n] = true
		if dstar > 0 && len(t.children[n]) > dstar {
			return fmt.Errorf("multicast: node %d has out-degree %d > d*=%d", n, len(t.children[n]), dstar)
		}
		for _, c := range t.children[n] {
			if t.parent[c] != n {
				return fmt.Errorf("multicast: node %d is child of %d but parent[%d]=%d", c, n, c, t.parent[c])
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.source); err != nil {
		return err
	}
	if len(seen) != len(t.parent) {
		return fmt.Errorf("multicast: %d nodes reachable of %d", len(seen), len(t.parent))
	}
	if len(t.attached) != len(t.parent)-1 {
		return fmt.Errorf("multicast: attachment list has %d entries for %d destinations", len(t.attached), len(t.parent)-1)
	}
	for _, d := range t.attached {
		if !seen[d] {
			return fmt.Errorf("multicast: attached node %d unreachable", d)
		}
	}
	return nil
}

// Clone returns a deep copy of the tree.
func (t *Tree) Clone() *Tree {
	c := &Tree{
		source:   t.source,
		parent:   make(map[NodeID]NodeID, len(t.parent)),
		children: make(map[NodeID][]NodeID, len(t.children)),
		attached: append([]NodeID(nil), t.attached...),
	}
	for k, v := range t.parent {
		c.parent[k] = v
	}
	for k, v := range t.children {
		c.children[k] = append([]NodeID(nil), v...)
	}
	return c
}

// Flatten serializes the tree into parallel node/parent arrays (source
// first, parent None) for transport in a CtrlTree control message.
func (t *Tree) Flatten() (nodes, parents []int32) {
	nodes = make([]int32, 0, len(t.parent))
	parents = make([]int32, 0, len(t.parent))
	nodes = append(nodes, t.source)
	parents = append(parents, None)
	// Emit in top-down order so FromFlat can attach children after parents,
	// preserving sibling order.
	var walk func(n NodeID)
	walk = func(n NodeID) {
		for _, c := range t.children[n] {
			nodes = append(nodes, c)
			parents = append(parents, n)
			walk(c)
		}
	}
	walk(t.source)
	return nodes, parents
}

// FromFlat reconstructs a tree from Flatten output. Unlike the builders it
// returns an error rather than panicking, because flat arrays arrive over
// the network.
func FromFlat(nodes, parents []int32) (*Tree, error) {
	if len(nodes) != len(parents) {
		return nil, fmt.Errorf("multicast: FromFlat length mismatch %d vs %d", len(nodes), len(parents))
	}
	if len(nodes) == 0 {
		return nil, fmt.Errorf("multicast: FromFlat with no nodes")
	}
	if parents[0] != None {
		return nil, fmt.Errorf("multicast: first node %d must be the source (parent None, got %d)", nodes[0], parents[0])
	}
	t := NewTree(nodes[0])
	for i := 1; i < len(nodes); i++ {
		if _, dup := t.parent[nodes[i]]; dup {
			return nil, fmt.Errorf("multicast: duplicate node %d", nodes[i])
		}
		if _, ok := t.parent[parents[i]]; !ok {
			return nil, fmt.Errorf("multicast: node %d has unknown parent %d", nodes[i], parents[i])
		}
		t.attach(nodes[i], parents[i])
	}
	if err := t.Validate(0); err != nil {
		return nil, err
	}
	return t, nil
}

// RemoveNode deletes a failed destination from the tree in place and
// re-parents its orphaned children (each keeping its own subtree) onto
// surviving nodes. Orphans are attached breadth-first-shallowest: each goes
// under the first BFS-order node with out-degree < dstar, so the repaired
// tree keeps the non-blocking d* cap and grows as little in depth as
// possible — the same placement rule as Algorithm 1's attachment scan. A
// node with spare capacity always exists (a tree has leaves), so repair
// cannot fail for dstar >= 1. The source cannot be removed.
func (t *Tree) RemoveNode(n NodeID, dstar int) error {
	if n == t.source {
		return fmt.Errorf("multicast: cannot remove source %d", n)
	}
	if _, ok := t.parent[n]; !ok {
		return fmt.Errorf("multicast: node %d not in tree", n)
	}
	orphans := append([]NodeID(nil), t.children[n]...)
	t.detach(n)
	delete(t.parent, n)
	delete(t.children, n)
	for i, d := range t.attached {
		if d == n {
			t.attached = append(t.attached[:i:i], t.attached[i+1:]...)
			break
		}
	}
	// Each reattached orphan subtree immediately joins the BFS scan, adding
	// its own spare capacity for the next orphan.
	for _, o := range orphans {
		t.reattach(o, t.findSpare(dstar))
	}
	return nil
}

// AddNode inserts a new destination into the tree in place, attaching it
// under the first BFS-order node with out-degree < dstar — the same
// breadth-first-shallowest placement rule as Algorithm 1's attachment scan
// and RemoveNode's orphan repair, so an extended tree keeps the
// non-blocking d* cap and grows as little in depth as possible. Adding a
// node that is already present (including one whose id was previously
// removed and is being reused) is an error, never a silent relink: the
// caller must have fully detached the old identity first, and RemoveNode
// guarantees no stale parent/children/attached entries survive to be
// resurrected here.
func (t *Tree) AddNode(n NodeID, dstar int) error {
	if t.Contains(n) {
		return fmt.Errorf("multicast: node %d already in tree", n)
	}
	t.attach(n, t.findSpare(dstar))
	return nil
}

// findSpare returns the first node in BFS order with out-degree < dstar
// (any node when dstar <= 0).
func (t *Tree) findSpare(dstar int) NodeID {
	for _, c := range t.bfsOrder() {
		if dstar <= 0 || len(t.children[c]) < dstar {
			return c
		}
	}
	return t.source
}

// subtreeNodes returns n and all its descendants.
func (t *Tree) subtreeNodes(n NodeID) map[NodeID]bool {
	out := map[NodeID]bool{}
	var walk func(NodeID)
	walk = func(x NodeID) {
		out[x] = true
		for _, c := range t.children[x] {
			walk(c)
		}
	}
	walk(n)
	return out
}

// detach removes n (and implicitly its subtree) from its parent's child
// list. n keeps its subtree links.
func (t *Tree) detach(n NodeID) {
	p := t.parent[n]
	cs := t.children[p]
	for i, c := range cs {
		if c == n {
			t.children[p] = append(cs[:i:i], cs[i+1:]...)
			break
		}
	}
	t.parent[n] = None
}

// reattach links a detached node n under newParent, as its last child.
func (t *Tree) reattach(n, newParent NodeID) {
	t.parent[n] = newParent
	t.children[newParent] = append(t.children[newParent], n)
}

// bfsOrder returns nodes in breadth-first order (source first), children in
// forwarding order — the "from S to the maximum layer" traversal of §3.4.
func (t *Tree) bfsOrder() []NodeID {
	out := make([]NodeID, 0, len(t.parent))
	queue := []NodeID{t.source}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		queue = append(queue, t.children[n]...)
	}
	return out
}

// String renders the tree level by level for debugging.
func (t *Tree) String() string {
	rt := t.ReceiveTimes()
	byTime := map[int][]NodeID{}
	maxT := 0
	for n, r := range rt {
		byTime[r] = append(byTime[r], n)
		if r > maxT {
			maxT = r
		}
	}
	s := fmt.Sprintf("Tree{source=%d, n=%d", t.source, t.Size())
	for r := 0; r <= maxT; r++ {
		ns := byTime[r]
		sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		s += fmt.Sprintf("; t%d=%v", r, ns)
	}
	return s + "}"
}
