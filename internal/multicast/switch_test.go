package multicast

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// destSet returns the set of destinations for comparison across switches.
func destSet(t *Tree) map[NodeID]bool {
	out := map[NodeID]bool{}
	for _, d := range t.Destinations() {
		out[d] = true
	}
	return out
}

func TestScaleDownFig8a(t *testing.T) {
	// Paper Fig. 8a: d* changes from 3 to 2. Every node must end with
	// out-degree <= 2 and the destination set must be preserved.
	tr := BuildNonBlocking(0, seq(9), 3)
	before := destSet(tr)
	moves := ScaleDown(tr, 2)
	if len(moves) == 0 {
		t.Fatal("expected at least one reconnection")
	}
	if err := tr.Validate(2); err != nil {
		t.Fatal(err)
	}
	after := destSet(tr)
	if len(after) != len(before) {
		t.Fatalf("destinations changed: %d -> %d", len(before), len(after))
	}
	for d := range before {
		if !after[d] {
			t.Fatalf("destination %d lost", d)
		}
	}
	for _, m := range moves {
		if m.OldParent == m.NewParent {
			t.Fatalf("useless move %+v", m)
		}
	}
}

func TestScaleDownIdempotentWhenSatisfied(t *testing.T) {
	tr := BuildNonBlocking(0, seq(20), 2)
	if moves := ScaleDown(tr, 2); len(moves) != 0 {
		t.Fatalf("tree already satisfies d*=2, got %d moves", len(moves))
	}
	if moves := ScaleDown(tr, 3); len(moves) != 0 {
		t.Fatalf("looser cap must not trigger moves, got %d", len(moves))
	}
}

func TestScaleDownToChain(t *testing.T) {
	// d*=1 forces a chain; every node has at most one child.
	tr := BuildBinomial(0, seq(15))
	ScaleDown(tr, 1)
	if err := tr.Validate(1); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() != 15 {
		t.Fatalf("chain depth %d, want 15", tr.Depth())
	}
}

func TestScaleUpFig8b(t *testing.T) {
	// Paper Fig. 8b: d* changes from 2 to 3 on the Fig. 6 tree (|T|=7); the
	// deepest instance (T4-1) moves up to S, shrinking completion 4 -> 3.
	tr := BuildNonBlocking(0, seq(7), 2)
	depthBefore := tr.Depth()
	moves := ScaleUp(tr, 3)
	if len(moves) == 0 {
		t.Fatal("expected at least one move")
	}
	if err := tr.Validate(3); err != nil {
		t.Fatal(err)
	}
	if tr.Depth() >= depthBefore {
		t.Fatalf("depth %d did not improve from %d", tr.Depth(), depthBefore)
	}
}

func TestScaleUpReachesBinomialDepth(t *testing.T) {
	// Scaling a chain up to an unbounded cap must converge to the binomial
	// completion time (the optimum).
	for _, n := range []int{7, 15, 31, 64} {
		tr := BuildNonBlocking(0, seq(n), 1)
		ScaleUp(tr, n+1)
		if err := tr.Validate(n + 1); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// The greedy per-node move reaches the binomial bound.
		want := BuildBinomial(0, seq(n)).Depth()
		if tr.Depth() > want {
			t.Fatalf("n=%d: scale-up depth %d, binomial %d", n, tr.Depth(), want)
		}
	}
}

func TestScaleUpNoChangeWhenNoBenefit(t *testing.T) {
	// A binomial tree is already optimal; a larger cap changes nothing.
	tr := BuildBinomial(0, seq(31))
	if moves := ScaleUp(tr, 31); len(moves) != 0 {
		t.Fatalf("expected no moves on optimal tree, got %v", moves)
	}
}

func TestSwitchDispatch(t *testing.T) {
	tr := BuildNonBlocking(0, seq(30), 3)
	dir, moves := Switch(tr, 3, 2)
	if dir != ScaleDownSwitch || len(moves) == 0 {
		t.Fatalf("down switch: dir=%v moves=%d", dir, len(moves))
	}
	if err := tr.Validate(2); err != nil {
		t.Fatal(err)
	}
	dir, moves = Switch(tr, 2, 5)
	if dir != ScaleUpSwitch || len(moves) == 0 {
		t.Fatalf("up switch: dir=%v moves=%d", dir, len(moves))
	}
	if err := tr.Validate(5); err != nil {
		t.Fatal(err)
	}
	dir, moves = Switch(tr, 5, 5)
	if dir != NoSwitch || moves != nil {
		t.Fatalf("same cap: dir=%v moves=%v", dir, moves)
	}
	if ScaleDownSwitch.String() != "scale-down" || ScaleUpSwitch.String() != "scale-up" || NoSwitch.String() != "none" {
		t.Fatal("Direction.String broken")
	}
}

func TestSwitchPreservesReachabilityUnderChurn(t *testing.T) {
	// Stress: random walk over d* values; after every switch the tree must
	// stay valid and keep all destinations.
	r := rand.New(rand.NewSource(11))
	n := 120
	cur := 3
	tr := BuildNonBlocking(0, seq(n), cur)
	for i := 0; i < 60; i++ {
		next := 1 + r.Intn(9)
		Switch(tr, cur, next)
		cur = next
		if err := tr.Validate(cur); err != nil {
			t.Fatalf("step %d (d*=%d): %v", i, cur, err)
		}
		if tr.Size() != n {
			t.Fatalf("step %d: size %d, want %d", i, tr.Size(), n)
		}
	}
}

func TestQuickScaleDownInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r.Seed(seed)
		n := 1 + r.Intn(300)
		oldD := 2 + r.Intn(8)
		newD := 1 + r.Intn(oldD)
		tr := BuildNonBlocking(0, seq(n), oldD)
		moves := ScaleDown(tr, newD)
		if err := tr.Validate(newD); err != nil {
			t.Logf("n=%d %d->%d: %v", n, oldD, newD, err)
			return false
		}
		if tr.Size() != n {
			return false
		}
		// Every move must reference nodes actually in the tree.
		for _, m := range moves {
			if !tr.Contains(m.Node) || !tr.Contains(m.NewParent) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickScaleUpImprovesOrKeepsDepth(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r.Seed(seed)
		n := 1 + r.Intn(300)
		oldD := 1 + r.Intn(5)
		newD := oldD + 1 + r.Intn(5)
		tr := BuildNonBlocking(0, seq(n), oldD)
		before := tr.Depth()
		ScaleUp(tr, newD)
		if err := tr.Validate(newD); err != nil {
			t.Logf("n=%d %d->%d: %v", n, oldD, newD, err)
			return false
		}
		return tr.Depth() <= before && tr.Size() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSwitchMovesAreIncremental(t *testing.T) {
	// The dynamic switch must NOT rebuild the whole tree: the number of
	// reconnections should be far below n ("without significant change",
	// §3.4). For a 480-node tree moving d* 4->3, well under half the nodes
	// may move.
	tr := BuildNonBlocking(0, seq(480), 4)
	moves := ScaleDown(tr, 3)
	if len(moves) > 240 {
		t.Fatalf("scale-down moved %d/480 nodes; not incremental", len(moves))
	}
	tr2 := BuildNonBlocking(0, seq(480), 3)
	moves2 := ScaleUp(tr2, 4)
	if len(moves2) > 240 {
		t.Fatalf("scale-up moved %d/480 nodes; not incremental", len(moves2))
	}
}

func TestScaleDownPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ScaleDown(BuildBinomial(0, seq(3)), 0)
}
