package multicast

import "testing"

// TestDepthOf checks the hop-distance lookup the tracer stamps on spans:
// 0 for the source, parent-chain length for members, -1 for strangers.
func TestDepthOf(t *testing.T) {
	dests := make([]NodeID, 30)
	for i := range dests {
		dests[i] = NodeID(i + 1)
	}
	tr := BuildNonBlocking(0, dests, 3)
	if d := tr.DepthOf(0); d != 0 {
		t.Fatalf("DepthOf(source) = %d, want 0", d)
	}
	for _, c := range tr.Children(0) {
		if d := tr.DepthOf(c); d != 1 {
			t.Fatalf("DepthOf(direct child %d) = %d, want 1", c, d)
		}
		for _, gc := range tr.Children(c) {
			if d := tr.DepthOf(gc); d != 2 {
				t.Fatalf("DepthOf(grandchild %d) = %d, want 2", gc, d)
			}
		}
	}
	if d := tr.DepthOf(999); d != -1 {
		t.Fatalf("DepthOf(non-member) = %d, want -1", d)
	}
	// Every destination has a finite depth bounded by the edge count.
	for _, n := range dests {
		d := tr.DepthOf(n)
		if d < 1 || d > len(dests) {
			t.Fatalf("DepthOf(%d) = %d out of range", n, d)
		}
	}
}
