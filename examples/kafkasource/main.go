// Kafkasource: the paper's evaluation setup uses Apache Kafka as the
// stream source (§5.1). This example reproduces that wiring with the
// in-process kafkalite broker: a producer loads synthetic ride-hailing
// requests into a partitioned topic; reliable Kafka spouts consume it
// (offsets commit only on ack), broadcast to matching instances via the
// Whale one-to-many path, and a flaky consumer forces redeliveries to show
// the at-least-once guarantee.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"whale"
	"whale/internal/kafkalite"
	"whale/internal/tuple"
	"whale/internal/workload"
)

const (
	topic      = "requests"
	partitions = 4
	records    = 2000
)

// matcher processes every broadcast request; the first delivery of every
// 50th record is failed to demonstrate redelivery.
type matcher struct {
	id       int32
	attempts *sync.Map
	done     *atomic.Int64
}

func (m *matcher) Prepare(ctx *whale.TaskContext) { m.id = ctx.TaskID }
func (m *matcher) Execute(tp *whale.Tuple, c *whale.Collector) {
	seq := tp.Int(0)
	if seq%50 == 0 {
		key := fmt.Sprintf("%d/%d", m.id, seq)
		if _, retried := m.attempts.LoadOrStore(key, true); !retried {
			c.Fail() // first attempt at this instance fails
			return
		}
	}
	m.done.Add(1)
}
func (m *matcher) Cleanup() {}

func main() {
	// Produce the synthetic request stream into the partitioned topic.
	broker := kafkalite.NewBroker()
	if err := broker.CreateTopic(topic, partitions, 0); err != nil {
		log.Fatal(err)
	}
	gen := workload.NewRideGen(workload.RideConfig{Drivers: 1000, Seed: 3})
	for i := 0; i < records; i++ {
		id, lat, lon := gen.NextRequest()
		val := make([]byte, 24)
		binary.LittleEndian.PutUint64(val[0:], uint64(id))
		binary.LittleEndian.PutUint64(val[8:], uint64(int64(lat*1e6)))
		binary.LittleEndian.PutUint64(val[16:], uint64(int64(lon*1e6)))
		if _, _, err := broker.Produce(topic, val[:8], val); err != nil {
			log.Fatal(err)
		}
	}

	var attempts sync.Map
	var done atomic.Int64
	b := whale.NewTopologyBuilder()
	b.Spout("kafka", func() whale.Spout {
		return &kafkalite.Spout{
			Broker: broker, Topic: topic, Group: "dispatch",
			Reliable: true, ExitAtEnd: true,
			Decode: func(r kafkalite.Record) []tuple.Value {
				return []tuple.Value{
					int64(binary.LittleEndian.Uint64(r.Value[0:])),
					float64(int64(binary.LittleEndian.Uint64(r.Value[8:]))) / 1e6,
					float64(int64(binary.LittleEndian.Uint64(r.Value[16:]))) / 1e6,
				}
			},
		}
	}, 2)
	b.Bolt("match", func() whale.Bolt { return &matcher{attempts: &attempts, done: &done} }, 8).All("kafka")
	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := whale.Run(topo, whale.SystemWhale, whale.Options{
		Workers: 4, AckEnabled: true, MaxSpoutPending: 32,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster.WaitSources()
	cluster.Drain(15 * time.Second)
	cluster.Shutdown()

	m := cluster.Metrics()
	committed := int64(0)
	for p := 0; p < partitions; p++ {
		committed += broker.CommittedOffset("dispatch", topic, p)
	}
	fmt.Printf("records produced:          %d over %d partitions\n", records, partitions)
	fmt.Printf("offsets committed on ack:  %d\n", committed)
	fmt.Printf("trees acked / failed:      %d / %d (failures were redelivered)\n",
		m.TuplesAcked.Value(), m.TuplesFailed.Value())
	fmt.Printf("broadcast executions:      %d (8 instances x %d records + retries)\n", done.Load(), records)
	fmt.Printf("complete latency p99:      %v\n",
		time.Duration(m.CompleteLatency.Snapshot().P99).Round(time.Microsecond))
}
