// Ride-hailing: the paper's motivating application (Fig. 4, §5.1). Driver
// locations are key-grouped to matching instances; passenger requests are
// broadcast (all grouping) to every matcher, which joins them against its
// local drivers; aggregators pick the closest driver per request.
//
// The example runs the same topology twice — under stock Storm semantics
// (instance-oriented communication) and under the full Whale system — and
// prints the upstream cost difference the paper measures.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"whale"
	"whale/internal/workload"
)

func runOnce(sys whale.System, label string) {
	var matched, unmatched atomic.Int64
	topo, err := workload.BuildRideTopology(workload.RideTopologyConfig{
		Gen:          workload.RideConfig{Drivers: 3000, Seed: 42},
		Matchers:     12,
		Aggregators:  2,
		MaxLocations: 30000,
		MaxRequests:  2000,
		Matched:      &matched,
		Unmatched:    &unmatched,
	})
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := whale.Run(topo, sys, whale.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	cluster.WaitSources()
	cluster.Drain(30 * time.Second)
	cluster.Shutdown()
	elapsed := time.Since(start)

	m := cluster.Metrics()
	lat := m.ProcessingLatency.Snapshot()
	fmt.Printf("%-22s requests: matched=%-5d unmatched=%-4d  wall=%-8v  serializations=%-7d  p99=%v\n",
		label, matched.Load(), unmatched.Load(), elapsed.Round(time.Millisecond),
		m.Serializations.Value(), time.Duration(lat.P99).Round(time.Microsecond))
}

func main() {
	fmt.Println("ride-hailing join: 2000 requests broadcast to 12 matchers over 4 workers")
	runOnce(whale.SystemStorm, "Storm (instance):")
	runOnce(whale.SystemWhale, "Whale (full):")
	fmt.Println("\nWhale serializes each broadcast tuple once per worker instead of once per instance;")
	fmt.Println("the serialization counter above is the paper's Fig. 26 effect at example scale.")
}
