// Stock exchange: the paper's second evaluation application (§5.1). A
// spout replays synthetic NASDAQ-like records; a split operator filters
// invalid records and divides the stream into buy and sell streams; a
// matching operator crosses them per symbol; a volume operator aggregates
// executed quantity in real time.
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"whale"
	"whale/internal/workload"
)

func main() {
	var filtered, volume, trades atomic.Int64
	var winMu sync.Mutex
	var windows int
	var peakWindow int64
	topo, err := workload.BuildStockTopology(workload.StockTopologyConfig{
		Gen:       workload.StockConfig{Symbols: 500, Seed: 7, InvalidFrac: 0.03},
		Splitters: 2, Matchers: 8, Aggregators: 2,
		Max:      50000,
		Filtered: &filtered, Volume: &volume, Trades: &trades,
		WindowWidth: 50 * time.Millisecond,
		OnWindow: func(start, end, vol int64) {
			winMu.Lock()
			windows++
			if vol > peakWindow {
				peakWindow = vol
			}
			winMu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := whale.Run(topo, whale.SystemWhale, whale.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	cluster.WaitSources()
	cluster.Drain(30 * time.Second)
	cluster.Shutdown()
	elapsed := time.Since(start)

	m := cluster.Metrics()
	fmt.Println("stock exchange: 50k records through split -> match -> volume")
	fmt.Printf("  filtered invalid records: %d\n", filtered.Load())
	fmt.Printf("  executed trades:          %d (total volume %d shares)\n", trades.Load(), volume.Load())
	fmt.Printf("  throughput:               %.0f records/s\n", 50000/elapsed.Seconds())
	fmt.Printf("  processing latency p50/p99: %v / %v\n",
		time.Duration(m.ProcessingLatency.Snapshot().P50).Round(time.Microsecond),
		time.Duration(m.ProcessingLatency.Snapshot().P99).Round(time.Microsecond))
	winMu.Lock()
	fmt.Printf("  tumbling 50ms volume windows: %d fired, peak window volume %d\n", windows, peakWindow)
	winMu.Unlock()
}
