// Quickstart: a minimal topology on the public API — one spout
// broadcasting sentences to a fleet of counting bolts via all grouping
// (the one-to-many partitioning the Whale paper is about), running under
// the full Whale system (worker-oriented communication + emulated RDMA +
// self-adjusting non-blocking multicast tree).
package main

import (
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"whale"
)

// sentenceSpout emits a fixed corpus, one sentence per tuple.
type sentenceSpout struct {
	sentences []string
	i         int
}

func (s *sentenceSpout) Open(*whale.TaskContext) {}
func (s *sentenceSpout) Next(c *whale.Collector) bool {
	if s.i >= len(s.sentences) {
		return false
	}
	c.Emit(s.sentences[s.i])
	s.i++
	return true
}
func (s *sentenceSpout) Close() {}

// wordCounter counts words in every broadcast sentence. Because the edge is
// all-grouped, every instance sees every sentence — e.g. each instance
// could apply a different model or filter to the same stream.
type wordCounter struct {
	ctx    *whale.TaskContext
	counts map[string]int
	report func(task int32, counts map[string]int)
}

func (w *wordCounter) Prepare(ctx *whale.TaskContext) {
	w.ctx = ctx
	w.counts = map[string]int{}
}

func (w *wordCounter) Execute(t *whale.Tuple, _ *whale.Collector) {
	for _, word := range strings.Fields(t.StringAt(0)) {
		w.counts[strings.ToLower(strings.Trim(word, ",.!?"))]++
	}
}

func (w *wordCounter) Cleanup() { w.report(w.ctx.TaskID, w.counts) }

func main() {
	corpus := []string{
		"the quick brown fox jumps over the lazy dog",
		"to be or not to be that is the question",
		"a journey of a thousand miles begins with a single step",
		"the whale surfaces where the stream runs deepest",
	}

	var mu sync.Mutex
	results := map[int32]map[string]int{}

	b := whale.NewTopologyBuilder()
	b.Spout("sentences", func() whale.Spout {
		return &sentenceSpout{sentences: corpus}
	}, 1)
	b.Bolt("counter", func() whale.Bolt {
		return &wordCounter{report: func(task int32, counts map[string]int) {
			mu.Lock()
			results[task] = counts
			mu.Unlock()
		}}
	}, 4).All("sentences")

	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := whale.Run(topo, whale.SystemWhale, whale.Options{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	cluster.WaitSources()
	cluster.Drain(10 * time.Second)
	cluster.Shutdown()

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("%d counter instances each saw the full broadcast stream:\n", len(results))
	for task, counts := range results {
		fmt.Printf("  task %d: %d distinct words, 'the' x%d\n", task, len(counts), counts["the"])
	}
	m := cluster.Metrics()
	fmt.Printf("emitted=%d executed=%d completed=%d p99 latency=%v\n",
		m.TuplesEmitted.Value(), m.TuplesExecuted.Value(), m.TuplesCompleted.Value(),
		time.Duration(m.ProcessingLatency.Snapshot().P99))
}
