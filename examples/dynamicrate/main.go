// Dynamicrate: the Figs. 23-24 scenario on the live runtime. The broadcast
// stream's input rate steps up and down while Whale's self-adjusting
// controller (§3.3) watches the transfer queue and restructures the
// non-blocking multicast tree (§3.4) — d* and the switch count are printed
// as the profile plays.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"whale"
	"whale/internal/workload"
)

// profile steps the offered rate like the paper's Fig. 23 (scaled to
// example size): low, double, higher, peak, back off.
func profile(elapsed time.Duration) float64 {
	switch sec := elapsed.Seconds(); {
	case sec < 2:
		return 3000
	case sec < 4:
		return 6000
	case sec < 6:
		return 8000
	case sec < 8:
		return 10000
	default:
		return 8000
	}
}

// profiledSpout emits broadcast tuples at the profiled rate.
type profiledSpout struct {
	limit *workload.RateLimiter
	until time.Time
	i     int64
}

func (s *profiledSpout) Open(*whale.TaskContext) {
	s.limit = workload.NewProfileLimiter(profile)
	s.until = time.Now().Add(10 * time.Second)
}

func (s *profiledSpout) Next(c *whale.Collector) bool {
	if time.Now().After(s.until) {
		return false
	}
	s.limit.Wait()
	s.i++
	c.Emit(s.i, "payload-abcdefghijklmnopqrstuvwxyz")
	return true
}

func (s *profiledSpout) Close() {}

// sinkBolt counts deliveries.
type sinkBolt struct{ n *atomic.Int64 }

func (b *sinkBolt) Prepare(*whale.TaskContext) {}
func (b *sinkBolt) Execute(*whale.Tuple, *whale.Collector) {
	b.n.Add(1)
}
func (b *sinkBolt) Cleanup() {}

func main() {
	obsAddr := flag.String("obs-addr", "", "serve /metrics and /debug endpoints on this address (e.g. :9090)")
	flag.Parse()
	var delivered atomic.Int64
	b := whale.NewTopologyBuilder()
	b.Spout("stream", func() whale.Spout { return &profiledSpout{} }, 1)
	b.Bolt("consumers", func() whale.Bolt { return &sinkBolt{n: &delivered} }, 24).All("stream")
	topo, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := whale.Run(topo, whale.SystemWhale, whale.Options{
		Workers:         8,
		InitialDstar:    1, // start as a chain so the controller has room to adapt
		MonitorInterval: 20 * time.Millisecond,
		ObsAddr:         *obsAddr,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("offered rate steps 3k -> 6k -> 8k -> 10k -> 8k tuples/s over 10s; 24 consumers on 8 workers")
	if addr := cluster.ObsAddr(); addr != "" {
		fmt.Printf("scale events live at http://%s/debug/events\n", addr)
	}
	start := time.Now()
	ticker := time.NewTicker(time.Second)
	var last int64
	for range ticker.C {
		el := time.Since(start)
		cur := delivered.Load()
		m := cluster.Metrics()
		fmt.Printf("t=%2.0fs offered=%6.0f/s delivered=%7d/s d*=%d switches=%d p99=%v\n",
			el.Seconds(), profile(el), cur-last, cluster.ActiveDstar(),
			m.Switches.Value(), time.Duration(m.ProcessingLatency.Snapshot().P99).Round(time.Microsecond))
		last = cur
		if el > 10*time.Second {
			break
		}
	}
	ticker.Stop()
	cluster.StopSources()
	cluster.Drain(10 * time.Second)
	cluster.Shutdown()
	m := cluster.Metrics()
	fmt.Printf("\ntotal delivered=%d switches=%d mean switch time=%v\n",
		delivered.Load(), m.Switches.Value(),
		time.Duration(int64(m.SwitchLatency.Mean())).Round(time.Microsecond))
}
