// Command whaleperf is the benchmark-regression harness behind `make
// perfgate` and the bench-gate CI job.
//
// It runs the curated internal/microbench cases (including the
// trace_record_off / trace_record_on pair, which holds the tuple hot path's
// tracing-disabled cost to zero allocations and bounds the worst-case
// tracing-enabled overhead) plus the gated quick-mode discrete-event
// experiments (fig13 ride throughput, fig17 multicast-tree throughput)
// -runs times each, records per-benchmark medians and dispersion, and
// writes a perfgate report (BENCH_*.json schema). Given -baseline it
// compares against the committed report and exits non-zero on any regression
// beyond the thresholds (default 10% for microbenchmarks, 25% for the
// noisier DES rows; rows whose measured dispersion exceeds the threshold get
// double headroom).
//
// Usage:
//
//	go run ./cmd/whaleperf -quick -runs 5 -baseline BENCH_6.json -out BENCH_6.new.json
//
// To refresh the committed baseline after an intentional perf change:
//
//	go run ./cmd/whaleperf -quick -out BENCH_6.json
package main

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"whale/internal/bench"
	"whale/internal/microbench"
	"whale/internal/perfgate"
)

// desExperiments are the gated discrete-event rows: the paper's headline
// throughput sweep (fig13) and the multicast-structure comparison (fig17).
// Both are deterministic (fixed DES seed), so their medians are stable.
var desExperiments = []string{"fig13", "fig17"}

func main() {
	var (
		quick    = flag.Bool("quick", true, "run DES experiments in quick mode (smaller sweeps)")
		runs     = flag.Int("runs", 5, "repetitions per benchmark; medians are reported")
		baseline = flag.String("baseline", "", "previous BENCH_*.json to gate against (empty: measure only)")
		out      = flag.String("out", "", "path to write the fresh report (empty: don't write)")
		thr      = flag.Float64("threshold", 0.10, "allowed fractional slowdown for micro/ rows")
		desThr   = flag.Float64("des-threshold", 0.25, "allowed fractional throughput drop for des/ rows")
		summary  = flag.String("summary", "", "append the before/after comparison as a markdown table to this file (requires -baseline; CI points it at $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "whaleperf: -runs must be >= 1")
		os.Exit(2)
	}

	rep := &perfgate.Report{Schema: perfgate.Schema, Quick: *quick, Benchmarks: map[string]perfgate.Metric{}}

	for _, c := range microbench.Cases() {
		m, err := runMicro(c, *runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whaleperf: micro/%s: %v\n", c.Name, err)
			os.Exit(1)
		}
		rep.Benchmarks["micro/"+c.Name] = m
		fmt.Printf("micro/%-28s %12.1f ns/op %8.0f B/op %6.1f allocs/op  (runs=%d disp=%.1f%%)\n",
			c.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.Runs, m.Dispersion*100)
	}

	for _, id := range desExperiments {
		if err := runDES(rep, id, *quick, *runs); err != nil {
			fmt.Fprintf(os.Stderr, "whaleperf: des/%s: %v\n", id, err)
			os.Exit(1)
		}
	}

	if *out != "" {
		if err := rep.Save(*out); err != nil {
			fmt.Fprintf(os.Stderr, "whaleperf: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(rep.Benchmarks))
	}

	if *baseline == "" {
		return
	}
	base, err := perfgate.Load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whaleperf: baseline: %v\n", err)
		os.Exit(1)
	}
	opts := perfgate.Options{MicroThreshold: *thr, DESThreshold: *desThr}
	if *summary != "" {
		if err := writeSummary(*summary, base, rep, opts); err != nil {
			fmt.Fprintf(os.Stderr, "whaleperf: summary: %v\n", err)
			os.Exit(1)
		}
	}
	regs := perfgate.Compare(base, rep, opts)
	if len(regs) == 0 {
		fmt.Printf("perf gate PASS: %d benchmarks within thresholds of %s\n", len(base.Benchmarks), *baseline)
		return
	}
	fmt.Fprintf(os.Stderr, "perf gate FAIL: %d regression(s) vs %s\n", len(regs), *baseline)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	os.Exit(1)
}

// writeSummary appends the before/after markdown table to path (append, not
// truncate: $GITHUB_STEP_SUMMARY accumulates across steps).
func writeSummary(path string, base, fresh *perfgate.Report, opts perfgate.Options) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if err := perfgate.WriteSummary(f, base, fresh, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runMicro benchmarks one case n times via testing.Benchmark and returns the
// per-run medians.
func runMicro(c microbench.Case, n int) (perfgate.Metric, error) {
	nsPerOp := make([]float64, 0, n)
	bytesPerOp := make([]float64, 0, n)
	allocsPerOp := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		res := testing.Benchmark(c.Bench)
		if res.N == 0 {
			return perfgate.Metric{}, fmt.Errorf("benchmark did not run (failed inside testing.Benchmark)")
		}
		nsPerOp = append(nsPerOp, float64(res.T.Nanoseconds())/float64(res.N))
		bytesPerOp = append(bytesPerOp, float64(res.AllocedBytesPerOp()))
		allocsPerOp = append(allocsPerOp, float64(res.AllocsPerOp()))
	}
	m := perfgate.Metric{
		NsPerOp:     perfgate.Median(nsPerOp),
		BytesPerOp:  perfgate.Median(bytesPerOp),
		AllocsPerOp: perfgate.Median(allocsPerOp),
		Dispersion:  perfgate.Dispersion(nsPerOp),
		Runs:        n,
	}
	if c.PerOpTuples > 0 && m.NsPerOp > 0 {
		m.TuplesPerSec = float64(c.PerOpTuples) * 1e9 / m.NsPerOp
	}
	return m, nil
}

// runDES executes one registered experiment n times and records the median
// throughput of every cell the experiment exposes via Report.Metrics.
func runDES(rep *perfgate.Report, id string, quick bool, n int) error {
	samples := map[string][]float64{}
	for i := 0; i < n; i++ {
		r, err := bench.Run(id, quick)
		if err != nil {
			return err
		}
		if len(r.Metrics) == 0 {
			return fmt.Errorf("experiment exposes no metrics")
		}
		for k, v := range r.Metrics {
			samples[k] = append(samples[k], v)
		}
	}
	for k, vs := range samples {
		name := fmt.Sprintf("des/%s/%s", id, k)
		m := perfgate.Metric{
			TuplesPerSec: perfgate.Median(vs),
			Dispersion:   perfgate.Dispersion(vs),
			Runs:         len(vs),
		}
		rep.Benchmarks[name] = m
		fmt.Printf("%-34s %14.0f tuples/sec  (runs=%d disp=%.1f%%)\n", name, m.TuplesPerSec, m.Runs, m.Dispersion*100)
	}
	return nil
}
