// Command whalevet runs Whale's project-specific static analyzers over the
// repository. It is wired into `make check`; run it standalone with:
//
//	go run ./cmd/whalevet ./...
//	go run ./cmd/whalevet -run lockheld,verberr ./internal/rdma/...
//	go run ./cmd/whalevet -list
//
// Findings print as path:line:col: analyzer: message and make the command
// exit nonzero. Suppress an individual finding with a //lint:ignore
// directive (see package whale/internal/analyzers).
package main

import (
	"flag"
	"fmt"
	"os"

	"whale/internal/analyzers"
)

func main() {
	var (
		run   = flag.String("run", "", "comma-separated analyzer subset (default: all)")
		list  = flag.Bool("list", false, "list available analyzers and exit")
		sarif = flag.String("sarif", "", "also write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: whalevet [-run a,b] [-list] [-sarif file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	as := analyzers.All()
	if *run != "" {
		var err error
		as, err = analyzers.ByName(*run)
		if err != nil {
			fmt.Fprintln(os.Stderr, "whalevet:", err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "whalevet:", err)
		os.Exit(2)
	}
	loader := analyzers.NewLoader(wd)
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "whalevet:", err)
		os.Exit(2)
	}

	diags := analyzers.RunAnalyzers(pkgs, as)
	if *sarif != "" {
		if err := writeSARIF(*sarif, wd, as, diags); err != nil {
			fmt.Fprintln(os.Stderr, "whalevet: writing SARIF:", err)
			os.Exit(2)
		}
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "whalevet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// writeSARIF emits the SARIF log to path ("-" means stdout). The log is
// written even when there are no findings: an empty results array is how
// code scanning learns previous alerts are fixed.
func writeSARIF(path, root string, as []*analyzers.Analyzer, diags []analyzers.Diagnostic) error {
	if path == "-" {
		return analyzers.WriteSARIF(os.Stdout, root, as, diags)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analyzers.WriteSARIF(f, root, as, diags); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
