// Command whalegen generates the synthetic datasets standing in for the
// paper's Didi and NASDAQ traces (DESIGN.md substitutions) and prints
// Table 2 statistics.
//
// Usage:
//
//	whalegen stats                          # Table 2
//	whalegen ride  -n 100000 > ride.csv     # location updates
//	whalegen rides -n 1000   > reqs.csv     # passenger requests
//	whalegen stock -n 100000 > stock.csv    # exchange records
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"whale/internal/workload"
)

func main() {
	n := flag.Int("n", 10000, "records to generate")
	drivers := flag.Int("drivers", 10000, "driver population (ride)")
	symbols := flag.Int("symbols", 6649, "symbol universe (stock)")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: whalegen [flags] stats|ride|rides|stock")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()

	switch flag.Arg(0) {
	case "stats":
		rows := workload.Table2(
			workload.RideConfig{Drivers: *drivers, Seed: *seed},
			workload.StockConfig{Symbols: *symbols, Seed: *seed},
		)
		fmt.Fprintf(w, "%-40s %15s %12s\n", "dataset", "tuples", "keys")
		for _, r := range rows {
			tuples := fmt.Sprint(r.Tuples)
			if r.Tuples < 0 {
				tuples = "unbounded"
			}
			fmt.Fprintf(w, "%-40s %15s %12d\n", r.Name, tuples, r.Keys)
		}
	case "ride":
		g := workload.NewRideGen(workload.RideConfig{Drivers: *drivers, Seed: *seed})
		fmt.Fprintln(w, "driver_id,lat,lon")
		for i := 0; i < *n; i++ {
			id, lat, lon := g.NextLocation()
			fmt.Fprintf(w, "%s,%.6f,%.6f\n", id, lat, lon)
		}
	case "rides":
		g := workload.NewRideGen(workload.RideConfig{Drivers: *drivers, Seed: *seed})
		fmt.Fprintln(w, "request_id,lat,lon")
		for i := 0; i < *n; i++ {
			id, lat, lon := g.NextRequest()
			fmt.Fprintf(w, "%d,%.6f,%.6f\n", id, lat, lon)
		}
	case "stock":
		g := workload.NewStockGen(workload.StockConfig{Symbols: *symbols, Seed: *seed})
		fmt.Fprintln(w, "symbol,side,price,qty")
		for i := 0; i < *n; i++ {
			sym, side, price, qty := g.Next()
			fmt.Fprintf(w, "%s,%s,%.4f,%d\n", sym, side, price, qty)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
