// Command whalebench regenerates the paper's evaluation tables and figures
// (see DESIGN.md for the per-experiment index).
//
// Usage:
//
//	whalebench list                 # list experiment ids
//	whalebench fig13                # run one experiment at full size
//	whalebench -quick fig13 fig14   # run several, small
//	whalebench all                  # run everything (slow)
//	whalebench -quick all
package main

import (
	"flag"
	"fmt"
	"os"

	"whale/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run smaller versions of each experiment")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: whalebench [-quick] <experiment-id>... | all | list\n\nexperiments:\n")
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Fprintf(os.Stderr, "  %-20s %s\n", id, e.Title)
		}
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if args[0] == "list" {
		for _, id := range bench.IDs() {
			e, _ := bench.Get(id)
			fmt.Printf("%-20s %s\n", id, e.Title)
		}
		return
	}
	ids := args
	if args[0] == "all" {
		ids = bench.IDs()
	}
	failed := 0
	for _, id := range ids {
		rep, err := bench.Run(id, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(rep.String())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
