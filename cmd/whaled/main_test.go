package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"whale"
)

type noopSpout struct{}

func (noopSpout) Open(*whale.TaskContext)    {}
func (noopSpout) Next(*whale.Collector) bool { return false }
func (noopSpout) Close()                     {}

type noopBolt struct{}

func (noopBolt) Prepare(*whale.TaskContext)             {}
func (noopBolt) Execute(*whale.Tuple, *whale.Collector) {}
func (noopBolt) Cleanup()                               {}

// TestMembershipDumpParses: the -membership dump and the /debug/membership
// endpoint serve the same parseable JSON document, with the elastic slots
// beyond -workers reported dormant.
func TestMembershipDumpParses(t *testing.T) {
	b := whale.NewTopologyBuilder()
	b.Spout("src", func() whale.Spout { return noopSpout{} }, 1)
	b.Bolt("sink", func() whale.Bolt { return noopBolt{} }, 2).All("src")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := whale.Run(topo, whale.SystemWhale, whale.Options{
		Workers: 2, MaxWorkers: 4,
		Transport: whale.TransportInproc,
		ObsAddr:   "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	var buf bytes.Buffer
	if err := writeMembership(cluster, &buf); err != nil {
		t.Fatal(err)
	}
	var rep whale.MembershipReport
	if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
		t.Fatalf("parse -membership dump %s: %v", buf.Bytes(), err)
	}
	if rep.MaxWorkers != 4 || len(rep.Workers) != 4 {
		t.Fatalf("dump sizing %+v", rep)
	}
	states := map[string]int{}
	for _, ws := range rep.Workers {
		states[ws.State]++
	}
	if states["alive"] != 2 || states["dormant"] != 2 {
		t.Fatalf("dump states %v", states)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/membership", cluster.ObsAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var served whale.MembershipReport
	if err := json.Unmarshal(body, &served); err != nil {
		t.Fatalf("parse /debug/membership %s: %v", body, err)
	}
	if served.MaxWorkers != rep.MaxWorkers || len(served.Workers) != len(rep.Workers) {
		t.Fatalf("endpoint and dump disagree: %+v vs %+v", served, rep)
	}
}
