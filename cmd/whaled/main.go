// Command whaled runs one of the evaluation applications on the live
// runtime under a chosen system preset, printing throughput/latency once a
// second — a quick way to watch the paper's systems behave.
//
// Usage:
//
//	whaled -app ride  -system whale -matchers 16 -workers 4 -duration 10s
//	whaled -app stock -system storm -matchers 8
//	whaled -app ride  -system whale -trace-out trace.json -bottleneck
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"whale"
	"whale/internal/workload"
)

var systems = map[string]whale.System{
	"storm":            whale.SystemStorm,
	"rdma-storm":       whale.SystemRDMAStorm,
	"whale-woc":        whale.SystemWhaleWOC,
	"whale-woc-rdma":   whale.SystemWhaleWOCRDMA,
	"whale-sequential": whale.SystemWhaleSequential,
	"rdmc":             whale.SystemRDMC,
	"whale":            whale.SystemWhale,
}

func main() {
	app := flag.String("app", "ride", "application: ride | stock")
	sysName := flag.String("system", "whale", "system: "+strings.Join(keys(), " | "))
	workers := flag.Int("workers", 4, "worker processes")
	maxWorkers := flag.Int("max-workers", 0, "elastic worker-slot cap; slots beyond -workers start dormant (0 = no headroom)")
	matchers := flag.Int("matchers", 16, "matching operator parallelism")
	duration := flag.Duration("duration", 10*time.Second, "run duration")
	rate := flag.Float64("rate", 0, "broadcast stream rate (tuples/s, 0 = full speed)")
	obsAddr := flag.String("obs-addr", "", "serve /metrics and /debug endpoints on this address (e.g. :9090)")
	traceEvery := flag.Int64("trace-sample-every", 0, "trace every Nth spout tuple through the pipeline (0 = off)")
	traceOut := flag.String("trace-out", "", "write sampled spans as Chrome trace_event JSON to this file on shutdown (implies tracing; load via chrome://tracing or Perfetto)")
	bottleneck := flag.Bool("bottleneck", false, "print the ranked bottleneck attribution report on shutdown")
	checkpoint := flag.Duration("checkpoint", 0, "aligned snapshot checkpoint interval (0 = off; see DESIGN.md §13)")
	membership := flag.Bool("membership", false, "print the cluster membership report as JSON on shutdown (also served at /debug/membership with -obs-addr)")
	autoscale := flag.Duration("autoscale", 0, "M/D/1 autoscale controller interval (0 = off; requires -checkpoint; see DESIGN.md §15)")
	asRhoHigh := flag.Float64("autoscale-rho-high", 0, "utilization above which an operator scales up (default 0.8)")
	asRhoLow := flag.Float64("autoscale-rho-low", 0, "utilization below which an operator scales down (default 0.3)")
	asCooldown := flag.Duration("autoscale-cooldown", 0, "minimum time between autoscale actions per operator (default 10x interval)")
	asMaxStep := flag.Int("autoscale-max-step", 0, "max parallelism change per autoscale decision (default 4)")
	flag.Parse()
	if *traceOut != "" && *traceEvery == 0 {
		*traceEvery = 100
	}

	sys, ok := systems[*sysName]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown system %q (known: %s)\n", *sysName, strings.Join(keys(), ", "))
		os.Exit(2)
	}

	var topo *whale.Topology
	var err error
	var matched, unmatched, trades atomic.Int64
	switch *app {
	case "ride":
		topo, err = workload.BuildRideTopology(workload.RideTopologyConfig{
			Gen:          workload.RideConfig{Drivers: 5000},
			Matchers:     *matchers,
			LocationRate: 20000,
			RequestRate:  *rate,
			Matched:      &matched,
			Unmatched:    &unmatched,
		})
	case "stock":
		topo, err = workload.BuildStockTopology(workload.StockTopologyConfig{
			Gen:                 workload.StockConfig{},
			Matchers:            *matchers,
			Rate:                *rate,
			Trades:              &trades,
			BroadcastToMatchers: true,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	cluster, err := whale.Run(topo, sys, whale.Options{
		Workers:            *workers,
		MaxWorkers:         *maxWorkers,
		ObsAddr:            *obsAddr,
		TraceSampleEvery:   *traceEvery,
		CheckpointInterval: *checkpoint,
		Autoscale: whale.AutoscaleConfig{
			Interval: *autoscale,
			RhoHigh:  *asRhoHigh,
			RhoLow:   *asRhoLow,
			Cooldown: *asCooldown,
			MaxStep:  *asMaxStep,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("running %s on %s with %d matchers over %d workers for %v\n",
		*app, sys, *matchers, *workers, *duration)
	if addr := cluster.ObsAddr(); addr != "" {
		fmt.Printf("observability: http://%s/metrics  http://%s/debug/whale\n", addr, addr)
	}

	start := time.Now()
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	var lastCompleted int64
	for range ticker.C {
		// The once-a-second printout reads the same registry snapshot the
		// /metrics and /debug/whale endpoints serve.
		s := cluster.Obs().Reg.Snapshot()
		completed := s.Counters["dsps.tuples_completed"]
		lat := s.Histograms["dsps.processing_latency_ns"]
		fmt.Printf("t=%3.0fs  completed/s=%-8d  p50=%-8s p99=%-8s  emitted=%-10d d*=%d\n",
			time.Since(start).Seconds(), completed-lastCompleted,
			time.Duration(lat.P50), time.Duration(lat.P99),
			s.Counters["dsps.tuples_emitted"], s.Gauges["multicast.active_dstar"])
		lastCompleted = completed
		if time.Since(start) >= *duration {
			break
		}
	}
	cluster.StopSources()
	cluster.Drain(5 * time.Second)
	if *checkpoint > 0 {
		s := cluster.Obs().Reg.Snapshot()
		fmt.Printf("checkpoints: epochs_completed=%d epochs_aborted=%d align_buffered=%d\n",
			s.Counters["snapshot.epochs_completed"], s.Counters["snapshot.epochs_aborted"],
			s.Counters["snapshot.align_buffered"])
	}
	if *bottleneck {
		fmt.Print(cluster.BottleneckReport())
	}
	if *autoscale > 0 {
		rep := cluster.AutoscaleReport()
		s := cluster.Obs().Reg.Snapshot()
		fmt.Printf("autoscale: evals=%d ups=%d downs=%d rejected=%d\n",
			s.Counters["autoscale.evals"], s.Counters["autoscale.scale_ups"],
			s.Counters["autoscale.scale_downs"], s.Counters["autoscale.rejected"])
		for _, d := range rep.Decisions {
			if d.Action != whale.AutoscaleHold {
				fmt.Printf("  %s %s %d -> %d (lambda=%.0f/s te=%s rho=%.2f): %s\n",
					d.Operator, d.Action, d.From, d.To,
					d.Lambda, time.Duration(d.Te*1e9), d.Rho, d.Reason)
			}
		}
	}
	if *traceOut != "" {
		if err := writeTrace(cluster, *traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
		} else {
			fmt.Printf("trace written to %s\n", *traceOut)
		}
	}
	if *membership {
		if err := writeMembership(cluster, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}
	cluster.Shutdown()
	switch *app {
	case "ride":
		fmt.Printf("requests matched=%d unmatched=%d\n", matched.Load(), unmatched.Load())
	case "stock":
		fmt.Printf("trades executed=%d\n", trades.Load())
	}
}

// writeMembership dumps the cluster membership report as indented JSON —
// the same document /debug/membership serves.
func writeMembership(c *whale.Cluster, w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Membership())
}

// writeTrace dumps the tracer's retained spans as Chrome trace_event JSON.
func writeTrace(c *whale.Cluster, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Obs().Tracer.WriteTraceEvents(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func keys() []string {
	out := make([]string, 0, len(systems))
	for k := range systems {
		out = append(out, k)
	}
	return out
}
