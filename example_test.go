package whale_test

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"whale"
)

// tickerSpout emits the integers 0..n-1.
type tickerSpout struct{ n, i int }

func (s *tickerSpout) Open(*whale.TaskContext) {}
func (s *tickerSpout) Next(c *whale.Collector) bool {
	if s.i >= s.n {
		return false
	}
	c.Emit(int64(s.i))
	s.i++
	return true
}
func (s *tickerSpout) Close() {}

// sumBolt accumulates everything it sees and reports at cleanup.
type sumBolt struct {
	ctx    *whale.TaskContext
	sum    int64
	report func(task int32, sum int64)
}

func (b *sumBolt) Prepare(ctx *whale.TaskContext)             { b.ctx = ctx }
func (b *sumBolt) Execute(t *whale.Tuple, _ *whale.Collector) { b.sum += t.Int(0) }
func (b *sumBolt) Cleanup()                                   { b.report(b.ctx.TaskID, b.sum) }

// Example runs a one-to-many topology under the full Whale system: four
// instances each receive the complete broadcast stream.
func Example() {
	var mu sync.Mutex
	sums := map[int32]int64{}

	b := whale.NewTopologyBuilder()
	b.Spout("numbers", func() whale.Spout { return &tickerSpout{n: 100} }, 1)
	b.Bolt("sum", func() whale.Bolt {
		return &sumBolt{report: func(task int32, sum int64) {
			mu.Lock()
			sums[task] = sum
			mu.Unlock()
		}}
	}, 4).All("numbers")

	topo, err := b.Build()
	if err != nil {
		panic(err)
	}
	cluster, err := whale.Run(topo, whale.SystemWhale, whale.Options{Workers: 2})
	if err != nil {
		panic(err)
	}
	cluster.WaitSources()
	cluster.Drain(10 * time.Second)
	cluster.Shutdown()

	mu.Lock()
	defer mu.Unlock()
	var totals []int64
	for _, s := range sums {
		totals = append(totals, s)
	}
	sort.Slice(totals, func(i, j int) bool { return totals[i] < totals[j] })
	fmt.Println(totals)
	// Output: [4950 4950 4950 4950]
}
