// Benchmarks regenerating the paper's evaluation: one testing.B benchmark
// per table and figure (each iteration runs the experiment in quick mode;
// use cmd/whalebench for the full-size tables), plus microbenchmarks of the
// core primitives (serialization, tree construction, dynamic switching).
//
//	go test -bench=. -benchmem
package whale_test

import (
	"testing"

	"whale/internal/bench"
	"whale/internal/microbench"
	"whale/internal/multicast"
	"whale/internal/queueing"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := bench.Run(id, true)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable2Datasets(b *testing.B)             { benchExperiment(b, "table2") }
func BenchmarkFig2StormBottleneck(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig3RDMCBlocking(b *testing.B)           { benchExperiment(b, "fig3") }
func BenchmarkFig11MMS(b *testing.B)                   { benchExperiment(b, "fig11") }
func BenchmarkFig12WTL(b *testing.B)                   { benchExperiment(b, "fig12") }
func BenchmarkFig13RideThroughput(b *testing.B)        { benchExperiment(b, "fig13") }
func BenchmarkFig14RideLatency(b *testing.B)           { benchExperiment(b, "fig14") }
func BenchmarkFig15StockThroughput(b *testing.B)       { benchExperiment(b, "fig15") }
func BenchmarkFig16StockLatency(b *testing.B)          { benchExperiment(b, "fig16") }
func BenchmarkFig17TreeThroughput(b *testing.B)        { benchExperiment(b, "fig17") }
func BenchmarkFig18TreeLatency(b *testing.B)           { benchExperiment(b, "fig18") }
func BenchmarkFig19TreeThroughputStock(b *testing.B)   { benchExperiment(b, "fig19") }
func BenchmarkFig20TreeLatencyStock(b *testing.B)      { benchExperiment(b, "fig20") }
func BenchmarkFig21MulticastLatency(b *testing.B)      { benchExperiment(b, "fig21") }
func BenchmarkFig22MulticastLatencyStock(b *testing.B) { benchExperiment(b, "fig22") }
func BenchmarkFig23DynamicThroughput(b *testing.B)     { benchExperiment(b, "fig23") }
func BenchmarkFig24DynamicLatency(b *testing.B)        { benchExperiment(b, "fig24") }
func BenchmarkFig25CommTime(b *testing.B)              { benchExperiment(b, "fig25") }
func BenchmarkFig26SerializationRatio(b *testing.B)    { benchExperiment(b, "fig26") }
func BenchmarkFig27TrafficRide(b *testing.B)           { benchExperiment(b, "fig27") }
func BenchmarkFig28TrafficStock(b *testing.B)          { benchExperiment(b, "fig28") }
func BenchmarkFig29VerbsThroughput(b *testing.B)       { benchExperiment(b, "fig29") }
func BenchmarkFig30VerbsLatency(b *testing.B)          { benchExperiment(b, "fig30") }
func BenchmarkFig31DiffVerbsThroughput(b *testing.B)   { benchExperiment(b, "fig31") }
func BenchmarkFig32DiffVerbsLatency(b *testing.B)      { benchExperiment(b, "fig32") }
func BenchmarkFig33Racks(b *testing.B)                 { benchExperiment(b, "fig33") }
func BenchmarkFig34RacksLatency(b *testing.B)          { benchExperiment(b, "fig34") }
func BenchmarkAblationWaterline(b *testing.B)          { benchExperiment(b, "ablation-waterline") }
func BenchmarkAblationSmoothing(b *testing.B)          { benchExperiment(b, "ablation-smoothing") }
func BenchmarkAblationDstar(b *testing.B)              { benchExperiment(b, "ablation-dstar") }

// --- core primitive microbenchmarks ---------------------------------------
//
// The bodies live in internal/microbench so cmd/whaleperf gates the exact
// same code via testing.Benchmark.

func BenchmarkTupleSerialize(b *testing.B)        { microbench.TupleSerialize(b) }
func BenchmarkTupleDeserialize(b *testing.B)      { microbench.TupleDeserialize(b) }
func BenchmarkWorkerMessageEncode(b *testing.B)   { microbench.WorkerMessageEncode(b) }
func BenchmarkWorkerMessageDecode(b *testing.B)   { microbench.WorkerMessageDecode(b) }
func BenchmarkControlEnvelopeEncode(b *testing.B) { microbench.ControlEnvelopeEncode(b) }
func BenchmarkTraceRecordOff(b *testing.B)        { microbench.TraceRecordOff(b) }
func BenchmarkTraceRecordOn(b *testing.B)         { microbench.TraceRecordOn(b) }
func BenchmarkBottleneckAttribution(b *testing.B) { benchExperiment(b, "bottleneck") }

func destIDs(n int) []multicast.NodeID {
	out := make([]multicast.NodeID, n)
	for i := range out {
		out[i] = multicast.NodeID(i + 1)
	}
	return out
}

func BenchmarkBuildNonBlockingTree480(b *testing.B) { microbench.TreeNonBlocking480(b) }

func BenchmarkBuildBinomialTree480(b *testing.B) {
	dests := destIDs(480)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		multicast.BuildBinomial(0, dests)
	}
}

func BenchmarkDynamicScaleDown(b *testing.B) {
	base := multicast.BuildNonBlocking(0, destIDs(480), 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := base.Clone()
		multicast.ScaleDown(tr, 3)
	}
}

func BenchmarkDynamicScaleUp(b *testing.B) { microbench.TreeScaleUp480(b) }

func BenchmarkQueueingMaxOutDegree(b *testing.B) {
	for i := 0; i < b.N; i++ {
		queueing.MaxOutDegree(30000, 6e-6, 1024)
	}
}

func BenchmarkCapabilitySequence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		queueing.Capability(480, 3, 481)
	}
}
