package whale_test

import (
	"sync/atomic"
	"testing"
	"time"

	"whale"
)

// wordSpout emits a fixed set of words.
type wordSpout struct {
	words []string
	i     int
}

func (s *wordSpout) Open(*whale.TaskContext) {}
func (s *wordSpout) Next(c *whale.Collector) bool {
	if s.i >= len(s.words) {
		return false
	}
	c.Emit(s.words[s.i], int64(1))
	s.i++
	return true
}
func (s *wordSpout) Close() {}

// broadcastCounter counts tuples per instance.
type broadcastCounter struct {
	total *atomic.Int64
}

func (b *broadcastCounter) Prepare(*whale.TaskContext) {}
func (b *broadcastCounter) Execute(t *whale.Tuple, _ *whale.Collector) {
	b.total.Add(1)
}
func (b *broadcastCounter) Cleanup() {}

func TestPublicAPIQuickstart(t *testing.T) {
	words := []string{"to", "be", "or", "not", "to", "be"}
	var total atomic.Int64
	b := whale.NewTopologyBuilder()
	b.Spout("words", func() whale.Spout { return &wordSpout{words: words} }, 1)
	b.Bolt("count", func() whale.Bolt { return &broadcastCounter{total: &total} }, 6).All("words")
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := whale.Run(topo, whale.SystemWhale, whale.Options{
		Workers: 3, InitialDstar: 2,
		MMS: 4 << 10, WTL: 500 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cluster.WaitSources()
	if !cluster.Drain(15 * time.Second) {
		cluster.Shutdown()
		t.Fatal("drain failed")
	}
	cluster.Shutdown()
	if got := total.Load(); got != int64(len(words)*6) {
		t.Fatalf("broadcast delivered %d, want %d", got, len(words)*6)
	}
	if cluster.Metrics().TuplesEmitted.Value() == 0 {
		t.Fatal("metrics empty")
	}
}

func TestPublicAPIAllSystems(t *testing.T) {
	for _, sys := range []whale.System{
		whale.SystemStorm, whale.SystemRDMAStorm, whale.SystemWhaleWOC,
		whale.SystemWhaleWOCRDMA, whale.SystemWhaleSequential,
		whale.SystemRDMC, whale.SystemWhale,
	} {
		t.Run(sys.String(), func(t *testing.T) {
			var total atomic.Int64
			b := whale.NewTopologyBuilder()
			b.Spout("src", func() whale.Spout { return &wordSpout{words: []string{"a", "b", "c", "d"}} }, 1)
			b.Bolt("sink", func() whale.Bolt { return &broadcastCounter{total: &total} }, 4).All("src")
			topo, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			cluster, err := whale.Run(topo, sys, whale.Options{
				Workers: 2, Transport: whale.TransportInproc, FixedDstar: sys != whale.SystemWhale,
			})
			if err != nil {
				t.Fatal(err)
			}
			cluster.WaitSources()
			cluster.Drain(10 * time.Second)
			cluster.Shutdown()
			if total.Load() != 16 {
				t.Fatalf("delivered %d, want 16", total.Load())
			}
		})
	}
}

func TestNewTestCollector(t *testing.T) {
	var streams []string
	c := whale.NewTestCollector(func(stream string, values []whale.Value) {
		streams = append(streams, stream)
	})
	c.Emit(int64(1))
	c.EmitTo("named", "x")
	if len(streams) != 2 || streams[1] != "named" {
		t.Fatalf("streams %v", streams)
	}
}
