// Package whale is a Go reproduction of "Whale: Efficient One-to-Many Data
// Partitioning in RDMA-Assisted Distributed Stream Processing Systems"
// (SC '21): a Storm-like stream processing engine whose one-to-many (all
// grouping) data partitioning runs over worker-oriented communication, an
// emulated RDMA verbs transport with ring memory regions and MMS/WTL
// stream slicing, and a self-adjusting non-blocking multicast tree.
//
// The public API mirrors the Storm programming model: build a Topology of
// Spouts and Bolts with groupings, then Run it under one of the paper's
// System presets (Storm, RDMAStorm, WhaleWOC, WhaleWOCRDMA,
// WhaleSequential, RDMC, Whale).
//
//	builder := whale.NewTopologyBuilder()
//	builder.Spout("src", newSource, 1)
//	builder.Bolt("match", newMatcher, 16).All("src")
//	topo, _ := builder.Build()
//	cluster, _ := whale.Run(topo, whale.SystemWhale, whale.Options{Workers: 4})
//	defer cluster.Shutdown()
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-reproduction results.
package whale

import (
	"encoding/json"
	"net/http"
	"time"

	"whale/internal/core"
	"whale/internal/dsps"
	"whale/internal/obs"
	"whale/internal/obs/attrib"
	"whale/internal/snapshot"
	"whale/internal/tuple"
)

// Data model re-exports.
type (
	// Tuple is the unit of data flowing through a topology.
	Tuple = tuple.Tuple
	// Value is one tuple field (int64, float64, string, []byte, or bool).
	Value = tuple.Value
)

// Programming model re-exports.
type (
	// Spout produces tuples (see dsps.Spout).
	Spout = dsps.Spout
	// Bolt processes tuples (see dsps.Bolt).
	Bolt = dsps.Bolt
	// Collector emits tuples from operator code.
	Collector = dsps.Collector
	// TaskContext describes the executing instance.
	TaskContext = dsps.TaskContext
	// TopologyBuilder assembles an application DAG.
	TopologyBuilder = dsps.TopologyBuilder
	// Topology is a validated application DAG.
	Topology = dsps.Topology
	// Metrics aggregates engine instrumentation.
	Metrics = dsps.Metrics
	// ShedPolicy selects overload behaviour for best-effort streams on a
	// full flow-controlled link (see Options.ShedPolicy).
	ShedPolicy = dsps.ShedPolicy
	// LinkStat is one flow-controlled link's snapshot.
	LinkStat = dsps.LinkStat
	// Snapshotter marks a stateful operator that participates in
	// checkpointing (enabled by Options.CheckpointInterval): its state is
	// captured per epoch and reinstalled on recovery.
	Snapshotter = snapshot.Snapshotter
	// SnapshotStore persists per-epoch operator snapshots
	// (Options.CheckpointStore).
	SnapshotStore = snapshot.Store
	// Sharder marks a Snapshotter whose state additionally splits into
	// key-range shards, letting a live rescale (Cluster.Rescale) split or
	// merge it across a changed instance count.
	Sharder = snapshot.Sharder
	// MembershipReport snapshots the elastic cluster: per-worker liveness,
	// operator placements, and multicast group membership. Served at
	// /debug/membership and returned by Cluster.Membership.
	MembershipReport = dsps.MembershipReport
	// AutoscaleConfig tunes the M/D/1-driven parallelism controller
	// (Options.Autoscale): utilization band, hysteresis, step and
	// parallelism clamps. Requires Options.CheckpointInterval.
	AutoscaleConfig = dsps.AutoscaleConfig
	// AutoscaleReport is the controller's introspection document: its
	// configuration plus the retained decisions with their model inputs.
	// Served at /debug/autoscale and returned by Cluster.AutoscaleReport.
	AutoscaleReport = dsps.AutoscaleReport
	// AutoscaleDecision is one controller evaluation of one operator.
	AutoscaleDecision = dsps.AutoscaleDecision
)

// NewMemSnapshotStore returns the in-memory snapshot store (the default
// when checkpointing is enabled; state survives worker failures within the
// process but not a process restart).
func NewMemSnapshotStore() SnapshotStore { return snapshot.NewMemStore() }

// NewFileSnapshotStore returns a durable directory-backed snapshot store.
func NewFileSnapshotStore(dir string) (SnapshotStore, error) { return snapshot.NewFileStore(dir) }

// Shed policies for Options.ShedPolicy. Acked (reliable) streams always
// block regardless of policy — they are never shed.
const (
	// ShedBlock blocks producers until link queue space frees (default).
	ShedBlock = dsps.ShedBlock
	// ShedNewest drops the arriving best-effort tuple when the link is full.
	ShedNewest = dsps.ShedNewest
	// ShedOldest evicts the oldest queued best-effort tuple to make room.
	ShedOldest = dsps.ShedOldest
)

// StreamTick is the stream of engine-generated tick tuples delivered to
// bolts declared with TickEvery (used by windowed operators to fire on
// time without traffic).
const StreamTick = dsps.StreamTick

// Autoscale decision actions (AutoscaleDecision.Action).
const (
	// AutoscaleHold: no action (in band, unconfirmed, clamped, cooling
	// down or backing off — the decision's Reason says which).
	AutoscaleHold = dsps.AutoscaleHold
	// AutoscaleUp / AutoscaleDown: a rescale was issued.
	AutoscaleUp   = dsps.AutoscaleUp
	AutoscaleDown = dsps.AutoscaleDown
	// AutoscaleRejected: the rescale plane refused the decision's plan.
	AutoscaleRejected = dsps.AutoscaleRejected
)

// NewTopologyBuilder returns an empty topology builder.
func NewTopologyBuilder() *TopologyBuilder { return dsps.NewTopologyBuilder() }

// NewTestCollector returns a detached collector for unit-testing operators.
func NewTestCollector(fn func(stream string, values []Value)) *Collector {
	return dsps.NewTestCollector(fn)
}

// System selects one of the paper's evaluated system configurations.
type System = core.System

// The paper's systems (§5.1).
const (
	// SystemStorm is stock Apache Storm: instance-oriented over TCP.
	SystemStorm = core.Storm
	// SystemRDMAStorm replaces TCP with basic two-sided verbs.
	SystemRDMAStorm = core.RDMAStorm
	// SystemWhaleWOC adds worker-oriented communication.
	SystemWhaleWOC = core.WhaleWOC
	// SystemWhaleWOCRDMA adds the optimized RDMA primitives (one-sided
	// READ, ring memory region, MMS/WTL).
	SystemWhaleWOCRDMA = core.WhaleWOCRDMA
	// SystemWhaleSequential is WhaleWOCRDMA under star multicast.
	SystemWhaleSequential = core.WhaleSequential
	// SystemRDMC uses a static binomial multicast tree.
	SystemRDMC = core.RDMC
	// SystemWhale is the full system with the self-adjusting non-blocking
	// multicast tree.
	SystemWhale = core.Whale
)

// Options tunes a cluster (see core.Options).
type Options = core.Options

// Transport kinds for Options.Transport.
const (
	// TransportAuto picks the system's canonical wire.
	TransportAuto = core.TransportAuto
	// TransportInproc uses Go channels.
	TransportInproc = core.TransportInproc
	// TransportTCP uses loopback TCP.
	TransportTCP = core.TransportTCP
	// TransportRDMA uses the emulated RDMA fabric.
	TransportRDMA = core.TransportRDMA
)

// Cluster is a running topology.
type Cluster struct {
	eng *dsps.Engine
	srv *obs.Server
}

// Run launches the topology under the given system preset. With
// Options.ObsAddr set, the observability endpoints (/metrics,
// /debug/whale, /debug/events, /debug/trace, /debug/bottleneck,
// /debug/membership, /debug/pprof) are served on that address for the
// cluster's lifetime.
func Run(topo *Topology, sys System, opts Options) (*Cluster, error) {
	eng, err := sys.Launch(topo, opts)
	if err != nil {
		return nil, err
	}
	c := &Cluster{eng: eng}
	if opts.ObsAddr != "" {
		srv, err := obs.Serve(opts.ObsAddr, eng.Obs())
		if err != nil {
			eng.Stop()
			return nil, err
		}
		srv.Handle("/debug/bottleneck", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			rep := c.BottleneckReport()
			if r.URL.Query().Get("format") == "text" {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_, _ = w.Write([]byte(rep.String()))
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(rep)
		}))
		srv.Handle("/debug/membership", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(c.Membership())
		}))
		srv.Handle("/debug/autoscale", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(c.AutoscaleReport())
		}))
		c.srv = srv
	}
	return c, nil
}

// Metrics returns live engine metrics.
func (c *Cluster) Metrics() *Metrics { return c.eng.Metrics() }

// Obs returns the cluster's observability scope: the metric registry,
// tuple-path tracer, and reconfiguration event log.
func (c *Cluster) Obs() *obs.Scope { return c.eng.Obs() }

// ObsAddr returns the address the observability server is listening on, or
// "" when Options.ObsAddr was unset.
func (c *Cluster) ObsAddr() string {
	if c.srv == nil {
		return ""
	}
	return c.srv.Addr()
}

// OperatorStats snapshots per-operator executed/emitted counters and
// execute-latency histograms.
func (c *Cluster) OperatorStats() map[string]dsps.OperatorStats {
	return c.eng.OperatorStats()
}

// WaitSources blocks until every spout finishes of its own accord.
func (c *Cluster) WaitSources() { c.eng.WaitSpouts() }

// StopSources signals spouts to finish and waits for them.
func (c *Cluster) StopSources() { c.eng.StopSpouts() }

// Drain waits (bounded) for in-flight tuples to finish; true on quiescence.
func (c *Cluster) Drain(timeout time.Duration) bool { return c.eng.Drain(timeout) }

// ActiveDstar reports the adaptive multicast tree's current out-degree cap
// (0 when no adaptive group exists).
func (c *Cluster) ActiveDstar() int { return c.eng.ActiveDstar() }

// LinkStats snapshots every flow-controlled link (empty when credit flow
// control is disabled).
func (c *Cluster) LinkStats() []LinkStat { return c.eng.LinkStats() }

// BottleneckReport folds the cluster's stall and utilization counters into
// a ranked bottleneck attribution (see internal/obs/attrib). Also served
// as JSON at /debug/bottleneck when Options.ObsAddr is set.
func (c *Cluster) BottleneckReport() attrib.Report { return c.eng.BottleneckReport() }

// DegradedWorkers lists workers currently reported degraded by the
// overload path (a subscriber paused past Options.DegradedAfter).
func (c *Cluster) DegradedWorkers() []int32 { return c.eng.DegradedWorkers() }

// JoinWorker admits a dormant worker id in [Options.Workers,
// Options.MaxWorkers) into the live membership through the
// CtrlJoin/CtrlWelcome handshake with the monitor. Once joined, the worker
// heartbeats, relays multicast traffic, and is a valid Rescale placement
// target.
func (c *Cluster) JoinWorker(id int32) error { return c.eng.JoinWorker(id) }

// LeaveWorker gracefully retires a joined worker that hosts no tasks
// (shrink its operators away first with Rescale). Unlike a confirmed
// failure, leaving is not terminal: the same id may rejoin later.
func (c *Cluster) LeaveWorker(id int32) error { return c.eng.LeaveWorker(id) }

// Rescale changes a live operator's parallelism through a rescale-aligned
// checkpoint (requires Options.CheckpointInterval): state splits or merges
// across the new instance set — by key-range shard for Sharder operators —
// sources rewind to the cut, and exactly-once holds across the transition.
// Optional placements pin each added task to a joined worker; by default
// the least-loaded joined workers are picked. A failure mid-rescale rolls
// the plan back to the pre-rescale topology.
func (c *Cluster) Rescale(op string, newPar int, on ...int32) error {
	return c.eng.Rescale(op, newPar, on...)
}

// Membership reports the elastic cluster state: every worker slot's
// liveness, operator placements, and per-group multicast membership. Also
// served as JSON at /debug/membership when Options.ObsAddr is set.
func (c *Cluster) Membership() MembershipReport { return c.eng.Membership() }

// AutoscaleReport snapshots the autoscale controller: its configuration
// and the last decisions with the model inputs (λ, t_e, ρ, queue depths)
// that drove them. Empty with Options.Autoscale disabled. Also served as
// JSON at /debug/autoscale when Options.ObsAddr is set.
func (c *Cluster) AutoscaleReport() AutoscaleReport { return c.eng.AutoscaleReport() }

// Shutdown stops the cluster and releases the network and the
// observability server.
func (c *Cluster) Shutdown() {
	c.eng.Stop()
	if c.srv != nil {
		c.srv.Close()
	}
}
