module whale

go 1.22
